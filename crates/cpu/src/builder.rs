//! An assembler-style builder for mini-RISC programs with label fix-ups.

use crate::isa::{Instruction, Program, Reg};

/// A branch target. Backward labels come from [`ProgramBuilder::label_here`];
/// forward labels from [`ProgramBuilder::forward_label`] +
/// [`ProgramBuilder::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds [`Program`]s instruction by instruction.
///
/// # Examples
///
/// ```
/// use ehs_cpu::{ProgramBuilder, Reg};
///
/// // Count r1 down from 3 to 0.
/// let mut b = ProgramBuilder::new("countdown");
/// b.li(Reg::R1, 3);
/// b.li(Reg::R2, 0);
/// let top = b.label_here();
/// b.addi(Reg::R1, Reg::R1, -1);
/// b.bne(Reg::R1, Reg::R2, top);
/// b.halt();
/// let program = b.build();
/// assert_eq!(program.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    instructions: Vec<Instruction>,
    /// Forward-label targets: `labels[i]` is `Some(pc)` once placed.
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting fix-up.
    fixups: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Starts a program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            instructions: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Current instruction count (the pc the next instruction will get).
    pub fn here(&self) -> u32 {
        self.instructions.len() as u32
    }

    /// A label bound to the current position (for backward branches).
    pub fn label_here(&mut self) -> Label {
        let id = self.labels.len();
        self.labels.push(Some(self.here()));
        Label(id)
    }

    /// Declares a label to be placed later (for forward branches).
    pub fn forward_label(&mut self) -> Label {
        let id = self.labels.len();
        self.labels.push(None);
        Label(id)
    }

    /// Binds a forward label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.here());
    }

    fn push(&mut self, i: Instruction) {
        self.instructions.push(i);
    }

    fn push_branch(&mut self, label: Label, make: impl FnOnce(u32) -> Instruction) {
        match self.labels[label.0] {
            Some(target) => self.push(make(target)),
            None => {
                self.fixups.push((self.instructions.len(), label.0));
                // Placeholder target 0, patched in build().
                self.push(make(0));
            }
        }
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: u32) {
        self.push(Instruction::Li(rd, imm));
    }

    /// `rd = rs + imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.push(Instruction::Addi(rd, rs, imm));
    }

    /// `rd = a + b`
    pub fn add(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.push(Instruction::Add(rd, a, b));
    }

    /// `rd = a - b`
    pub fn sub(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.push(Instruction::Sub(rd, a, b));
    }

    /// `rd = a * b`
    pub fn mul(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.push(Instruction::Mul(rd, a, b));
    }

    /// `rd = a ^ b`
    pub fn xor(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.push(Instruction::Xor(rd, a, b));
    }

    /// `rd = a & b`
    pub fn and(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.push(Instruction::And(rd, a, b));
    }

    /// `rd = a | b`
    pub fn or(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.push(Instruction::Or(rd, a, b));
    }

    /// `rd = rs << amt`
    pub fn shl(&mut self, rd: Reg, rs: Reg, amt: u8) {
        self.push(Instruction::Shl(rd, rs, amt));
    }

    /// `rd = rs >> amt`
    pub fn shr(&mut self, rd: Reg, rs: Reg, amt: u8) {
        self.push(Instruction::Shr(rd, rs, amt));
    }

    /// `rd = [base + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.push(Instruction::Load(rd, base, offset));
    }

    /// `[base + offset] = src`
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32) {
        self.push(Instruction::Store(src, base, offset));
    }

    /// `if a != b goto label`
    pub fn bne(&mut self, a: Reg, b: Reg, label: Label) {
        self.push_branch(label, |t| Instruction::Bne(a, b, t));
    }

    /// `if a == b goto label`
    pub fn beq(&mut self, a: Reg, b: Reg, label: Label) {
        self.push_branch(label, |t| Instruction::Beq(a, b, t));
    }

    /// `if a < b goto label` (unsigned)
    pub fn blt(&mut self, a: Reg, b: Reg, label: Label) {
        self.push_branch(label, |t| Instruction::Blt(a, b, t));
    }

    /// `goto label`
    pub fn jmp(&mut self, label: Label) {
        self.push_branch(label, Instruction::Jmp);
    }

    /// Stop.
    pub fn halt(&mut self) {
        self.push(Instruction::Halt);
    }

    /// Finishes the program with code base 0.
    ///
    /// # Panics
    ///
    /// Panics if any forward label was never placed.
    pub fn build(self) -> Program {
        self.build_at(0)
    }

    /// Finishes the program at a given code base address.
    ///
    /// # Panics
    ///
    /// Panics if any forward label was never placed.
    pub fn build_at(mut self, code_base: u32) -> Program {
        for (idx, label) in self.fixups.drain(..) {
            let target = self.labels[label].unwrap_or_else(|| panic!("label {label} never placed"));
            let patched = match self.instructions[idx] {
                Instruction::Bne(a, b, _) => Instruction::Bne(a, b, target),
                Instruction::Beq(a, b, _) => Instruction::Beq(a, b, target),
                Instruction::Blt(a, b, _) => Instruction::Blt(a, b, target),
                Instruction::Jmp(_) => Instruction::Jmp(target),
                other => unreachable!("fixup on non-branch {other:?}"),
            };
            self.instructions[idx] = patched;
        }
        Program::new(self.name, self.instructions, code_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_is_patched() {
        let mut b = ProgramBuilder::new("f");
        let skip = b.forward_label();
        b.jmp(skip);
        b.li(Reg::R1, 1); // skipped
        b.place(skip);
        b.halt();
        let p = b.build();
        assert_eq!(p.fetch(0), Instruction::Jmp(2));
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics_at_build() {
        let mut b = ProgramBuilder::new("f");
        let l = b.forward_label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_place_panics() {
        let mut b = ProgramBuilder::new("f");
        let l = b.forward_label();
        b.place(l);
        b.place(l);
    }

    #[test]
    fn backward_label_points_where_it_was_taken() {
        let mut b = ProgramBuilder::new("b");
        b.li(Reg::R1, 0);
        let top = b.label_here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.jmp(top);
        let p = b.build();
        assert_eq!(p.fetch(2), Instruction::Jmp(1));
    }
}
