//! Static data-independence analysis: does a program's access stream
//! depend only on constants?
//!
//! The transposed lockstep path in `ehs-sim` replays one lane's recorded
//! `(pc, kind, address)` stream for every sibling lane. That is sound only
//! if the stream is a function of the *architectural position* (number of
//! committed instructions since reset) alone — never of loaded data values,
//! which differ per lane because each lane's memory sees different outage
//! and write-back histories.
//!
//! [`stream_is_data_independent`] proves this with a forward taint fixpoint
//! over the program's control-flow graph. A register is *tainted* when its
//! value may derive from a `Load` result; the program passes when
//!
//! * every `Load`/`Store` **base address** register is untainted,
//! * every conditional **branch operand** is untainted.
//!
//! Under those two rules control flow and every effective address are
//! computed from immediates alone (registers reset to zero, `Li`
//! constants, and arithmetic over them), so two cores at the same
//! architectural position — regardless of what their loads returned —
//! fetch the same pc, produce the same effect kind and address, and halt
//! at the same instruction. Tainted values may still flow through
//! accumulators into *store data*; that is fine because no simulation
//! statistic depends on data values.
//!
//! The analysis is conservative: `false` never breaks correctness, it only
//! keeps a lane on the live per-lane stepper.

use crate::isa::{Instruction, Program, Reg};

/// Per-pc taint state: bit `i` set = register `i` may hold load-derived
/// data on entry to that pc.
type TaintMask = u16;

#[inline]
fn bit(r: Reg) -> TaintMask {
    1 << r.index()
}

/// True if the program's `(pc, effect kind, address)` stream is provably
/// independent of loaded data values — see the module docs for the exact
/// obligation and why it makes cross-lane stream replay sound.
pub fn stream_is_data_independent(program: &Program) -> bool {
    let len = program.len();
    // entry[pc] = known-possible taint at entry; `seen` distinguishes
    // "no taint" from "not yet reached".
    let mut entry: Vec<TaintMask> = vec![0; len];
    let mut seen: Vec<bool> = vec![false; len];
    let mut work: Vec<u32> = vec![0];
    seen[0] = true; // registers reset to zero: nothing tainted at pc 0

    while let Some(pc) = work.pop() {
        let taint = entry[pc as usize];
        let mut out = taint;
        let mut targets: [Option<u32>; 2] = [None, None];
        match program.fetch(pc) {
            Instruction::Li(rd, _) => {
                out &= !bit(rd);
                targets[0] = Some(pc + 1);
            }
            Instruction::Addi(rd, rs, _)
            | Instruction::Shl(rd, rs, _)
            | Instruction::Shr(rd, rs, _) => {
                out = (out & !bit(rd)) | if taint & bit(rs) != 0 { bit(rd) } else { 0 };
                targets[0] = Some(pc + 1);
            }
            Instruction::Add(rd, a, b)
            | Instruction::Sub(rd, a, b)
            | Instruction::Mul(rd, a, b)
            | Instruction::Xor(rd, a, b)
            | Instruction::And(rd, a, b)
            | Instruction::Or(rd, a, b) => {
                out = (out & !bit(rd))
                    | if taint & (bit(a) | bit(b)) != 0 {
                        bit(rd)
                    } else {
                        0
                    };
                targets[0] = Some(pc + 1);
            }
            Instruction::Load(rd, base, _) => {
                if taint & bit(base) != 0 {
                    return false; // data-dependent load address
                }
                out |= bit(rd);
                targets[0] = Some(pc + 1);
            }
            Instruction::Store(_, base, _) => {
                // Store *data* may be tainted (no statistic reads values);
                // the address must not be.
                if taint & bit(base) != 0 {
                    return false;
                }
                targets[0] = Some(pc + 1);
            }
            Instruction::Bne(a, b, t) | Instruction::Beq(a, b, t) | Instruction::Blt(a, b, t) => {
                if taint & (bit(a) | bit(b)) != 0 {
                    return false; // data-dependent control flow
                }
                targets = [Some(pc + 1), Some(t)];
            }
            Instruction::Jmp(t) => {
                targets[0] = Some(t);
            }
            Instruction::Halt => {}
        }
        for t in targets.into_iter().flatten() {
            let Some(slot) = entry.get_mut(t as usize) else {
                // Fall-through past the last instruction: such a path would
                // crash the core's fetch, not silently diverge; ignore it
                // here (builder programs always end in Halt).
                continue;
            };
            let merged = *slot | out;
            if !seen[t as usize] || merged != *slot {
                *slot = merged;
                seen[t as usize] = true;
                work.push(t);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn straight_line_constant_program_passes() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 5);
        b.add(Reg::R2, Reg::R1, Reg::R1);
        b.halt();
        assert!(stream_is_data_independent(&b.build()));
    }

    #[test]
    fn accumulator_loop_with_untainted_induction_passes() {
        // for i in 0..4 { acc ^= mem[base + 4*i] } — the classic shape of
        // the shipped workload kernels: loaded data only reaches the
        // accumulator, never an address or branch.
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0); // i
        b.li(Reg::R2, 4); // bound
        b.li(Reg::R3, 0x100); // base
        b.li(Reg::R4, 0); // acc
        let top = b.label_here();
        b.load(Reg::R5, Reg::R3, 0);
        b.xor(Reg::R4, Reg::R4, Reg::R5);
        b.store(Reg::R4, Reg::R3, 0);
        b.addi(Reg::R3, Reg::R3, 4);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        assert!(stream_is_data_independent(&b.build()));
    }

    #[test]
    fn load_dependent_address_fails() {
        // Pointer chase: mem[mem[base]].
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0x100);
        b.load(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, Reg::R2, 0);
        b.halt();
        assert!(!stream_is_data_independent(&b.build()));
    }

    #[test]
    fn load_dependent_branch_fails() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0x100);
        b.li(Reg::R2, 0);
        b.load(Reg::R3, Reg::R1, 0);
        let out = b.forward_label();
        b.beq(Reg::R3, Reg::R2, out);
        b.place(out);
        b.halt();
        assert!(!stream_is_data_independent(&b.build()));
    }

    #[test]
    fn taint_clears_when_overwritten_by_constant() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0x100);
        b.load(Reg::R2, Reg::R1, 0); // R2 tainted...
        b.li(Reg::R2, 7); // ...then overwritten by a constant
        let out = b.forward_label();
        b.beq(Reg::R2, Reg::R2, out);
        b.place(out);
        b.halt();
        assert!(stream_is_data_independent(&b.build()));
    }

    #[test]
    fn taint_survives_merge_points() {
        // One path taints R2, the other does not; after the join a branch
        // on R2 must still be rejected.
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0x100);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 1);
        let join = b.forward_label();
        let skip = b.forward_label();
        b.beq(Reg::R3, Reg::R3, skip); // always taken, but both succs analysed
        b.load(Reg::R2, Reg::R1, 0); // taints R2 on the fall-through path
        b.place(skip);
        b.jmp(join);
        b.place(join);
        let out = b.forward_label();
        b.beq(Reg::R2, Reg::R1, out); // R2 may be tainted at the join
        b.place(out);
        b.halt();
        assert!(!stream_is_data_independent(&b.build()));
    }

    #[test]
    fn tainted_store_value_is_allowed() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0x100);
        b.load(Reg::R2, Reg::R1, 0);
        b.store(Reg::R2, Reg::R1, 4); // tainted data, untainted address
        b.halt();
        assert!(stream_is_data_independent(&b.build()));
    }
}
