//! A tiny, deterministic, non-cryptographic hasher for the simulator's
//! per-access maps.
//!
//! Every hot map in the workspace is keyed by small integers (block
//! addresses, set indices, serial numbers). `std`'s default SipHash is
//! DoS-resistant but costs tens of cycles per lookup; the rustc-style "Fx"
//! multiply-xor hash below is a handful of instructions and — unlike
//! `RandomState` — is *seedless*, so iteration-independent map behaviour is
//! identical across runs and threads, which the determinism tests rely on.
//!
//! Not suitable for untrusted keys; everything hashed here comes from the
//! simulated program itself.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant from FxHash (Firefox / rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; processes input 8 bytes at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Seedless `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        for addr in [0u64, 0x40, 0xFFFF_FFFF_FFFF_FFF0, 12345] {
            assert_eq!(hash_of(&addr), hash_of(&addr));
        }
        assert_eq!(hash_of(&(1u64, true)), hash_of(&(1u64, true)));
    }

    #[test]
    fn nearby_block_addresses_do_not_collide() {
        let hashes: FxHashSet<u64> = (0..1024u64).map(|i| hash_of(&(i * 16))).collect();
        assert_eq!(hashes.len(), 1024, "block-aligned keys must stay distinct");
    }

    #[test]
    fn byte_slices_of_different_length_differ() {
        let a = {
            let mut h = FxHasher::default();
            h.write(&[0, 0, 0]);
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(&[0, 0, 0, 0]);
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(0x40, 7);
        assert_eq!(m.get(&0x40), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(0x80));
        assert!(!s.insert(0x80));
    }
}
