//! Cache Decay (Kaxiras, Hu, Martonosi — ISCA 2001), the conventional
//! time-based dead block predictor the paper combines EDBP with.

use crate::{GatedBlock, LeakagePredictor, TickOutcome, WakeHint};
use ehs_cache::{BlockId, Cache, GateResult};
use ehs_units::Voltage;

/// Configuration of [`CacheDecay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecayConfig {
    /// Cycles of inactivity after which a block is declared dead.
    ///
    /// Implemented as the original paper does: a global counter fires every
    /// `decay_interval / 4` cycles and increments a saturating 2-bit counter
    /// per block; a block whose counter reaches 3 is gated, and any access
    /// resets its counter. The default (32 k cycles = 1.3 ms at 25 MHz) is
    /// the competitive point for this platform: longer than the synthetic
    /// workloads' typical reuse distances, comparable to a healthy power
    /// cycle so decay acts during stable stretches.
    pub decay_interval_cycles: u64,
}

impl Default for DecayConfig {
    fn default() -> Self {
        Self {
            decay_interval_cycles: 32_768,
        }
    }
}

/// Per-block decay counter ceiling (2-bit).
const COUNTER_DEAD: u8 = 3;

/// The time-based dead block predictor.
///
/// A block that has not been touched for roughly
/// [`DecayConfig::decay_interval_cycles`] is power-gated (after write-back if
/// dirty). Cache Decay is oblivious to power failures — the paper's whole
/// point — so it leaves energy on the table whenever an outage destroys
/// blocks it chose to keep ("zombie" blocks).
///
/// # Example
///
/// ```
/// use edbp_core::{CacheDecay, DecayConfig, LeakagePredictor};
/// use ehs_cache::{AccessKind, Cache, CacheConfig, LookupOutcome};
/// use ehs_units::Voltage;
///
/// let mut cache = Cache::new(CacheConfig::paper_dcache());
/// let config = DecayConfig { decay_interval_cycles: 4096 };
/// let mut decay = CacheDecay::new(config, &cache);
/// cache.lookup(0x40, AccessKind::Read);
/// let id = cache.fill(0x40, &[0u8; 16], false);
/// decay.on_fill(&cache, id, 0x40);
///
/// // A full decay interval with no accesses kills the block.
/// let v = Voltage::from_volts(3.5);
/// let mut gated = 0;
/// for cycle in 0..=4096 {
///     gated += decay.tick(&mut cache, v, cycle).gated.len();
/// }
/// assert_eq!(gated, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheDecay {
    config: DecayConfig,
    /// Saturating 2-bit counters, indexed `set * ways + way`.
    counters: Vec<u8>,
    ways: usize,
    /// Cycle at which the global counter next fires.
    next_global_tick: u64,
    /// Global tick period (`decay_interval / 4`).
    period: u64,
}

impl CacheDecay {
    /// Creates a decay predictor sized for `cache`.
    ///
    /// # Panics
    ///
    /// Panics if the decay interval is shorter than 4 cycles.
    pub fn new(config: DecayConfig, cache: &Cache) -> Self {
        assert!(
            config.decay_interval_cycles >= 4,
            "decay interval must cover at least one 2-bit step"
        );
        let period = config.decay_interval_cycles / 4;
        Self {
            config,
            counters: vec![0; cache.blocks() as usize],
            ways: usize::from(cache.ways()),
            next_global_tick: period,
            period,
        }
    }

    /// The configured decay interval.
    pub fn config(&self) -> DecayConfig {
        self.config
    }

    #[inline]
    fn index(&self, block: BlockId) -> usize {
        block.set as usize * self.ways + usize::from(block.way)
    }

    fn reset_counter(&mut self, block: BlockId) {
        let idx = self.index(block);
        self.counters[idx] = 0;
    }
}

impl LeakagePredictor for CacheDecay {
    fn name(&self) -> &'static str {
        "cache-decay"
    }

    fn on_hit(&mut self, _cache: &Cache, block: BlockId, _addr: u64) {
        self.reset_counter(block);
    }

    fn on_fill(&mut self, _cache: &Cache, block: BlockId, _addr: u64) {
        self.reset_counter(block);
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        _voltage: Voltage,
        cycle: u64,
        out: &mut TickOutcome,
    ) {
        while cycle >= self.next_global_tick {
            self.next_global_tick += self.period;
            for set in 0..cache.sets() {
                for way in 0..cache.ways() {
                    let block = BlockId { set, way };
                    let idx = self.index(block);
                    if self.counters[idx] >= COUNTER_DEAD {
                        // Already flagged dead; gate if still powered. On
                        // the NVSRAM platform, dirty content is parked in
                        // its nonvolatile twin (the sink fires only for a
                        // dirty valid block).
                        let parked = &mut out.parked;
                        match cache.gate_with(block, |addr, data| parked.push(addr, data)) {
                            GateResult::GatedValid { addr, dirty } => {
                                out.gated.push(GatedBlock { addr, dirty });
                            }
                            GateResult::GatedInvalid | GateResult::AlreadyGated => {}
                        }
                    } else {
                        self.counters[idx] += 1;
                    }
                }
            }
        }
    }

    fn next_wakeup(&self) -> WakeHint {
        // tick() is a strict no-op (the while loop does not enter) until the
        // cycle counter reaches the next global-counter firing.
        WakeHint {
            at_cycle: Some(self.next_global_tick),
            below_voltage: None,
            every_cycle: false,
        }
    }

    fn on_reboot(&mut self, cache: &Cache) {
        // The cache is cold after an outage; counters restart, and the global
        // phase is preserved (the hardware counter keeps running).
        debug_assert_eq!(self.counters.len(), cache.blocks() as usize);
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::{AccessKind, CacheConfig};

    const V: Voltage = Voltage::from_base(3.5);

    fn setup() -> (Cache, CacheDecay) {
        let cache = Cache::new(CacheConfig::paper_dcache());
        let decay = CacheDecay::new(
            DecayConfig {
                decay_interval_cycles: 4096,
            },
            &cache,
        );
        (cache, decay)
    }

    fn fill(cache: &mut Cache, decay: &mut CacheDecay, addr: u64, dirty: bool) {
        let kind = if dirty {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        cache.lookup(addr, kind);
        let id = cache.fill(addr, &[0u8; 16], dirty);
        decay.on_fill(cache, id, addr);
    }

    #[test]
    fn idle_block_decays_after_interval() {
        let (mut cache, mut decay) = setup();
        fill(&mut cache, &mut decay, 0x40, false);
        let mut gated = Vec::new();
        for cycle in 0..=4096 {
            gated.extend(decay.tick(&mut cache, V, cycle).gated);
        }
        assert_eq!(gated.len(), 1);
        assert_eq!(gated[0].addr, 0x40);
        assert!(!gated[0].dirty);
        assert!(cache.contains(0x40).is_none());
    }

    #[test]
    fn accessed_block_survives() {
        let (mut cache, mut decay) = setup();
        fill(&mut cache, &mut decay, 0x40, false);
        for cycle in 0..=8192u64 {
            // Touch the block every 512 cycles: it must never decay.
            if cycle % 512 == 0 {
                if let ehs_cache::LookupOutcome::Hit(h) = cache.lookup(0x40, AccessKind::Read) {
                    decay.on_hit(&cache, h.block, 0x40);
                } else {
                    panic!("block disappeared at cycle {cycle}");
                }
            }
            let out = decay.tick(&mut cache, V, cycle);
            assert!(out.gated.is_empty(), "gated at cycle {cycle}");
        }
    }

    #[test]
    fn dirty_block_writes_back_before_gating() {
        let (mut cache, mut decay) = setup();
        fill(&mut cache, &mut decay, 0x80, true);
        let mut out = TickOutcome::default();
        for cycle in 0..=4096 {
            out.absorb(&decay.tick(&mut cache, V, cycle));
        }
        assert_eq!(out.gated.len(), 1);
        assert!(out.gated[0].dirty);
        assert_eq!(out.parked.len(), 1, "dirty block parked in its NV twin");
        assert_eq!(out.parked.iter().next().expect("one entry").0, 0x80);
    }

    #[test]
    fn catches_up_over_large_cycle_jumps() {
        let (mut cache, mut decay) = setup();
        fill(&mut cache, &mut decay, 0x40, false);
        // Jump straight past several intervals in one tick.
        let out = decay.tick(&mut cache, V, 100_000);
        assert_eq!(out.gated.len(), 1);
    }

    #[test]
    fn reboot_resets_counters() {
        let (mut cache, mut decay) = setup();
        fill(&mut cache, &mut decay, 0x40, false);
        // Age the block nearly to death.
        let _ = decay.tick(&mut cache, V, 3000);
        cache.power_fail();
        decay.on_reboot(&cache);
        fill(&mut cache, &mut decay, 0x40, false);
        // One more global tick must NOT kill the freshly reset block.
        let out = decay.tick(&mut cache, V, 4096);
        assert!(out.gated.is_empty());
    }

    #[test]
    fn invalid_frames_eventually_stop_leaking() {
        let (mut cache, mut decay) = setup();
        // No fills at all: every cold frame decays to gated.
        for cycle in (0..=4096).step_by(64) {
            let _ = decay.tick(&mut cache, V, cycle);
        }
        assert_eq!(cache.gated_blocks(), cache.blocks());
        assert_eq!(cache.active_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one 2-bit step")]
    fn rejects_tiny_interval() {
        let cache = Cache::new(CacheConfig::paper_dcache());
        let _ = CacheDecay::new(
            DecayConfig {
                decay_interval_cycles: 2,
            },
            &cache,
        );
    }
}
