//! Zombie-aware prediction accounting (paper Section IV).
//!
//! The paper redefines dead-block-prediction metrics for intermittent
//! computing: power outages are an extra eviction mechanism, so a kept block
//! can be wrong in two ways — it may die unreferenced at a normal eviction
//! (a classic **dead** block the predictor missed) or be destroyed by a
//! power outage before any reuse (a **zombie** block, "Missed Prediction" in
//! Fig. 6). The ledger classifies every block *generation* (fill → gate /
//! evict / outage) into exactly one terminal class:
//!
//! | generation ended by | condition                             | class |
//! |----------------------|---------------------------------------|-------|
//! | gating               | never re-requested before the outage  | true positive |
//! | gating               | re-requested within the power cycle   | false positive |
//! | eviction             | reused at least once since fill       | true negative |
//! | eviction             | never reused since fill               | false negative (dead, missed) |
//! | power outage         | still resident (any reuse history)    | missed prediction (zombie, missed) |
//!
//! Coverage and accuracy follow the paper's Equations 1 and 2, with both
//! kinds of missed blocks counted as false negatives.

use crate::paged::PagedTable;

/// Terminal classification of one block generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictionClass {
    /// Gated, and genuinely dead or zombie: energy saved, nothing lost.
    TruePositive,
    /// Gated but re-requested before the outage: an extra miss was caused.
    FalsePositive,
    /// Kept, and reused before its eviction: keeping it was right.
    TrueNegative,
    /// Kept, but sat unreferenced from fill to eviction: a classic dead
    /// block the predictor failed to exploit.
    FalseNegativeDead,
    /// Kept, but destroyed unreferenced by a power outage: a zombie block —
    /// the failure mode conventional predictors cannot see (Fig. 6's
    /// "Missed Prediction").
    MissedZombie,
}

/// Aggregated counts with the paper's redefined coverage/accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictionSummary {
    /// Correctly deactivated dead/zombie blocks.
    pub true_positives: u64,
    /// Live blocks mistakenly deactivated.
    pub false_positives: u64,
    /// Live blocks correctly retained.
    pub true_negatives: u64,
    /// Dead blocks unnecessarily kept active until eviction.
    pub false_negatives_dead: u64,
    /// Zombie blocks unnecessarily kept active until a power outage.
    pub missed_zombies: u64,
}

impl PredictionSummary {
    /// Total classified generations.
    pub fn total(&self) -> u64 {
        self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives_dead
            + self.missed_zombies
    }

    /// All false negatives (dead + zombie).
    pub fn false_negatives(&self) -> u64 {
        self.false_negatives_dead + self.missed_zombies
    }

    /// Equation 1: `TP / (TP + FN)`, zombies included in FN.
    /// Returns 0 when there were no dead or zombie blocks at all.
    pub fn coverage(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives();
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Equation 2: `(TP + TN) / total`. Returns 0 with no predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    /// Fraction of generations in each class, in declaration order
    /// (TP, FP, TN, FN-dead, missed-zombie). Zeros when empty.
    pub fn fractions(&self) -> [f64; 5] {
        let total = self.total();
        if total == 0 {
            return [0.0; 5];
        }
        let t = total as f64;
        [
            self.true_positives as f64 / t,
            self.false_positives as f64 / t,
            self.true_negatives as f64 / t,
            self.false_negatives_dead as f64 / t,
            self.missed_zombies as f64 / t,
        ]
    }

    /// Records one terminal classification.
    pub fn record(&mut self, class: PredictionClass) {
        match class {
            PredictionClass::TruePositive => self.true_positives += 1,
            PredictionClass::FalsePositive => self.false_positives += 1,
            PredictionClass::TrueNegative => self.true_negatives += 1,
            PredictionClass::FalseNegativeDead => self.false_negatives_dead += 1,
            PredictionClass::MissedZombie => self.missed_zombies += 1,
        }
    }

    /// Element-wise sum of two summaries.
    pub fn merged(&self, other: &PredictionSummary) -> PredictionSummary {
        PredictionSummary {
            true_positives: self.true_positives + other.true_positives,
            false_positives: self.false_positives + other.false_positives,
            true_negatives: self.true_negatives + other.true_negatives,
            false_negatives_dead: self.false_negatives_dead + other.false_negatives_dead,
            missed_zombies: self.missed_zombies + other.missed_zombies,
        }
    }
}

/// Tracks every in-flight block generation and classifies it when it ends.
///
/// The full-system simulator feeds it the same event stream the predictors
/// see; the ledger is exact (all sets), unlike EDBP's internal sampled FPR.
#[derive(Debug, Clone, Default)]
pub struct PredictionLedger {
    /// Hits since fill, per resident block address (paged shadow table).
    resident: PagedTable<u32>,
    /// Addresses gated this power cycle, awaiting TP/FP resolution.
    gated_pending: PagedTable<()>,
    summary: PredictionSummary,
}

impl PredictionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ledger whose shadow tables index block-aligned
    /// addresses densely (one slot per `block_bytes`-sized block).
    pub fn for_block_bytes(block_bytes: u32) -> Self {
        Self {
            resident: PagedTable::for_block_bytes(block_bytes),
            gated_pending: PagedTable::for_block_bytes(block_bytes),
            summary: PredictionSummary::default(),
        }
    }

    /// The running totals.
    pub fn summary(&self) -> PredictionSummary {
        self.summary
    }

    /// A block for `addr` was installed.
    pub fn on_fill(&mut self, addr: u64) {
        self.resident.insert(addr, 0);
    }

    /// A lookup hit `addr`.
    pub fn on_hit(&mut self, addr: u64) {
        if let Some(hits) = self.resident.get_mut(addr) {
            *hits += 1;
        }
    }

    /// A lookup missed on `addr`: if we gated that address earlier in this
    /// power cycle, the kill was wrong.
    pub fn on_miss(&mut self, addr: u64) {
        if self.gated_pending.remove(addr).is_some() {
            self.summary.record(PredictionClass::FalsePositive);
        }
    }

    /// A predictor gated the block at `addr`.
    pub fn on_gate(&mut self, addr: u64) {
        self.resident.remove(addr);
        self.gated_pending.insert(addr, ());
    }

    /// [`on_gate`] for a whole tick's worth of gated addresses at once.
    ///
    /// Predictor ticks gate blocks in cache-walk (set) order, so the
    /// addresses are page-local; the paged tables' batch cursor resolves
    /// each shadow page once per run instead of once per block.
    /// Classification is identical to per-address [`on_gate`] calls.
    ///
    /// [`on_gate`]: PredictionLedger::on_gate
    pub fn on_gate_batch(&mut self, addrs: impl IntoIterator<Item = u64> + Clone) {
        self.resident.remove_batch(addrs.clone(), |_, _| {});
        self.gated_pending.fill_batch(addrs, ());
    }

    /// The block at `addr` was evicted by a miss.
    pub fn on_evict(&mut self, addr: u64) {
        if let Some(hits) = self.resident.remove(addr) {
            self.summary.record(if hits > 0 {
                PredictionClass::TrueNegative
            } else {
                PredictionClass::FalseNegativeDead
            });
        }
    }

    /// A power outage destroyed all volatile state: pending kills become
    /// true positives (their blocks would have died anyway), resident blocks
    /// become missed zombies.
    pub fn on_power_fail(&mut self) {
        // Only the counts matter (every pending kill is a TP, every resident
        // block a missed zombie), so drain by bulk `len` + O(1) epoch clear.
        self.summary.true_positives += self.gated_pending.len() as u64;
        self.gated_pending.clear();
        self.summary.missed_zombies += self.resident.len() as u64;
        self.resident.clear();
    }

    /// Blocks restored into the cache at reboot (NVSRAMCache restores
    /// checkpointed blocks) begin fresh generations.
    pub fn on_restore(&mut self, addr: u64) {
        self.resident.insert(addr, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_then_quiet_until_outage_is_tp() {
        let mut l = PredictionLedger::new();
        l.on_fill(0x40);
        l.on_gate(0x40);
        l.on_power_fail();
        let s = l.summary();
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn gate_then_rerequest_is_fp() {
        let mut l = PredictionLedger::new();
        l.on_fill(0x40);
        l.on_gate(0x40);
        l.on_miss(0x40); // program wanted it back
        l.on_power_fail();
        let s = l.summary();
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.true_positives, 0);
    }

    #[test]
    fn kept_and_reused_then_evicted_is_tn() {
        let mut l = PredictionLedger::new();
        l.on_fill(0x40);
        l.on_hit(0x40);
        l.on_evict(0x40);
        assert_eq!(l.summary().true_negatives, 1);
    }

    #[test]
    fn kept_unused_until_eviction_is_dead_fn() {
        let mut l = PredictionLedger::new();
        l.on_fill(0x40);
        l.on_evict(0x40);
        assert_eq!(l.summary().false_negatives_dead, 1);
    }

    #[test]
    fn resident_at_outage_is_missed_zombie() {
        let mut l = PredictionLedger::new();
        l.on_fill(0x40);
        l.on_hit(0x40); // even reused blocks become zombies at the outage
        l.on_power_fail();
        let s = l.summary();
        assert_eq!(s.missed_zombies, 1);
        assert_eq!(s.false_negatives(), 1);
    }

    #[test]
    fn miss_on_never_gated_addr_is_ignored() {
        let mut l = PredictionLedger::new();
        l.on_miss(0x999);
        assert_eq!(l.summary().total(), 0);
    }

    #[test]
    fn fp_does_not_double_count_at_outage() {
        let mut l = PredictionLedger::new();
        l.on_fill(0x40);
        l.on_gate(0x40);
        l.on_miss(0x40);
        l.on_power_fail();
        assert_eq!(l.summary().total(), 1, "one generation, one class");
    }

    #[test]
    fn coverage_and_accuracy_match_equations() {
        let s = PredictionSummary {
            true_positives: 6,
            false_positives: 1,
            true_negatives: 2,
            false_negatives_dead: 1,
            missed_zombies: 2,
        };
        assert!((s.coverage() - 6.0 / 9.0).abs() < 1e-12);
        assert!((s.accuracy() - 8.0 / 12.0).abs() < 1e-12);
        let f = s.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_rates_are_zero() {
        let s = PredictionSummary::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.fractions(), [0.0; 5]);
    }

    #[test]
    fn merged_adds_fields() {
        let a = PredictionSummary {
            true_positives: 1,
            ..Default::default()
        };
        let b = PredictionSummary {
            missed_zombies: 2,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.missed_zombies, 2);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn batched_gates_classify_like_sequential_gates() {
        // Same event stream, gates applied singly vs as one batch: every
        // terminal class must match. Covers TP (gated, quiet), FP (gated,
        // re-requested) and the resident survivor (zombie at outage).
        let addrs = [0x40u64, 0x80, 0x1000];
        let mut single = PredictionLedger::for_block_bytes(64);
        let mut batched = PredictionLedger::for_block_bytes(64);
        for l in [&mut single, &mut batched] {
            for &a in &addrs {
                l.on_fill(a);
            }
            l.on_fill(0x2000);
        }
        for &a in &addrs {
            single.on_gate(a);
        }
        batched.on_gate_batch(addrs.iter().copied());
        for l in [&mut single, &mut batched] {
            l.on_miss(0x80); // one gated block re-requested -> FP
            l.on_power_fail();
        }
        assert_eq!(single.summary(), batched.summary());
        assert_eq!(batched.summary().true_positives, 2);
        assert_eq!(batched.summary().false_positives, 1);
        assert_eq!(batched.summary().missed_zombies, 1);
    }

    #[test]
    fn restore_starts_a_fresh_generation() {
        let mut l = PredictionLedger::new();
        l.on_restore(0x40);
        l.on_hit(0x40);
        l.on_evict(0x40);
        assert_eq!(l.summary().true_negatives, 1);
    }
}
