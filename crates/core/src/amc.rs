//! Adaptive Mode Control (Zhou et al., PACT 2001) — a time-based predictor
//! like Cache Decay whose decay interval self-tunes from the observed
//! sleep-miss rate. Included because the paper argues (Section VII-A) that
//! EDBP composes with *any* conventional predictor; AMC lets the benches
//! demonstrate that beyond Cache Decay.

use crate::paged::PagedTable;
use crate::{GatedBlock, LeakagePredictor, TickOutcome, WakeHint};
use ehs_cache::{BlockId, Cache, GateResult};
use ehs_units::Voltage;

/// Configuration of [`AdaptiveModeControl`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmcConfig {
    /// Starting decay interval in cycles.
    pub initial_interval_cycles: u64,
    /// Smallest interval adaptation may reach.
    pub min_interval_cycles: u64,
    /// Largest interval adaptation may reach.
    pub max_interval_cycles: u64,
    /// Adaptation window: re-evaluate every this many misses.
    pub window_misses: u64,
    /// If `sleep misses / window misses` exceeds this, double the interval
    /// (the predictor is killing live blocks).
    pub high_watermark: f64,
    /// If below this, halve the interval (room to be more aggressive).
    pub low_watermark: f64,
}

impl Default for AmcConfig {
    fn default() -> Self {
        Self {
            initial_interval_cycles: 4096,
            min_interval_cycles: 512,
            max_interval_cycles: 65_536,
            window_misses: 256,
            high_watermark: 0.10,
            low_watermark: 0.02,
        }
    }
}

/// The AMC predictor: Cache Decay's mechanism with a feedback loop on the
/// decay interval. AMC keeps its tag bookkeeping active (modelled here as a
/// set of gated addresses) so it can recognise *sleep misses* — misses to
/// blocks it put to sleep — and adapt.
#[derive(Debug, Clone)]
pub struct AdaptiveModeControl {
    config: AmcConfig,
    interval: u64,
    counters: Vec<u8>,
    ways: usize,
    next_global_tick: u64,
    /// Addresses gated by AMC whose tags would still match (sleep misses).
    asleep: PagedTable<()>,
    window_misses: u64,
    window_sleep_misses: u64,
}

const COUNTER_DEAD: u8 = 3;

impl AdaptiveModeControl {
    /// Creates an AMC predictor sized for `cache`.
    ///
    /// # Panics
    ///
    /// Panics if the interval bounds are inverted or below 4 cycles.
    pub fn new(config: AmcConfig, cache: &Cache) -> Self {
        assert!(config.min_interval_cycles >= 4, "interval too small");
        assert!(
            config.min_interval_cycles <= config.initial_interval_cycles
                && config.initial_interval_cycles <= config.max_interval_cycles,
            "interval bounds must bracket the initial interval"
        );
        Self {
            interval: config.initial_interval_cycles,
            counters: vec![0; cache.blocks() as usize],
            ways: usize::from(cache.ways()),
            next_global_tick: config.initial_interval_cycles / 4,
            asleep: PagedTable::for_block_bytes(cache.block_bytes()),
            window_misses: 0,
            window_sleep_misses: 0,
            config,
        }
    }

    /// The current (adapted) decay interval in cycles.
    pub fn interval_cycles(&self) -> u64 {
        self.interval
    }

    #[inline]
    fn index(&self, block: BlockId) -> usize {
        block.set as usize * self.ways + usize::from(block.way)
    }

    fn adapt(&mut self) {
        let rate = self.window_sleep_misses as f64 / self.window_misses as f64;
        if rate > self.config.high_watermark {
            self.interval = (self.interval * 2).min(self.config.max_interval_cycles);
        } else if rate < self.config.low_watermark {
            self.interval = (self.interval / 2).max(self.config.min_interval_cycles);
        }
        self.window_misses = 0;
        self.window_sleep_misses = 0;
    }
}

impl LeakagePredictor for AdaptiveModeControl {
    fn name(&self) -> &'static str {
        "amc"
    }

    fn on_hit(&mut self, _cache: &Cache, block: BlockId, _addr: u64) {
        let idx = self.index(block);
        self.counters[idx] = 0;
    }

    fn on_fill(&mut self, _cache: &Cache, block: BlockId, addr: u64) {
        let idx = self.index(block);
        self.counters[idx] = 0;
        self.asleep.remove(addr);
    }

    fn on_miss(&mut self, addr: u64) {
        self.window_misses += 1;
        if self.asleep.remove(addr).is_some() {
            self.window_sleep_misses += 1;
        }
        if self.window_misses >= self.config.window_misses {
            self.adapt();
        }
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        _voltage: Voltage,
        cycle: u64,
        out: &mut TickOutcome,
    ) {
        while cycle >= self.next_global_tick {
            self.next_global_tick += self.interval / 4;
            for set in 0..cache.sets() {
                for way in 0..cache.ways() {
                    let block = BlockId { set, way };
                    let idx = self.index(block);
                    if self.counters[idx] >= COUNTER_DEAD {
                        // Dirty content is parked in the NVSRAM twin, as
                        // with EDBP.
                        let parked = &mut out.parked;
                        match cache.gate_with(block, |addr, data| parked.push(addr, data)) {
                            GateResult::GatedValid { addr, dirty } => {
                                self.asleep.insert(addr, ());
                                out.gated.push(GatedBlock { addr, dirty });
                            }
                            GateResult::GatedInvalid | GateResult::AlreadyGated => {}
                        }
                    } else {
                        self.counters[idx] += 1;
                    }
                }
            }
        }
    }

    fn next_wakeup(&self) -> WakeHint {
        // Same shape as Cache Decay: the global counter only fires at
        // `next_global_tick`. Interval adaptation happens in `on_miss`, which
        // forces hints to be re-queried anyway, and never moves an
        // already-scheduled firing.
        WakeHint {
            at_cycle: Some(self.next_global_tick),
            below_voltage: None,
            every_cycle: false,
        }
    }

    fn on_reboot(&mut self, cache: &Cache) {
        debug_assert_eq!(self.counters.len(), cache.blocks() as usize);
        self.counters.fill(0);
        // Outage wiped the cache: sleep bookkeeping no longer applies, but
        // the learned interval is persistent state worth keeping (it is
        // checkpointed with the other registers).
        self.asleep.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::{AccessKind, CacheConfig};

    const V: Voltage = Voltage::from_base(3.5);

    fn setup() -> (Cache, AdaptiveModeControl) {
        let cache = Cache::new(CacheConfig::paper_dcache());
        let amc = AdaptiveModeControl::new(AmcConfig::default(), &cache);
        (cache, amc)
    }

    #[test]
    fn idle_block_is_gated() {
        let (mut cache, mut amc) = setup();
        cache.lookup(0x40, AccessKind::Read);
        let id = cache.fill(0x40, &[0u8; 16], false);
        amc.on_fill(&cache, id, 0x40);
        let mut gated = 0;
        for cycle in (0..=8192).step_by(64) {
            gated += amc.tick(&mut cache, V, cycle).gated.len();
        }
        assert_eq!(gated, 1);
    }

    #[test]
    fn sleep_misses_double_the_interval() {
        let (cache, mut amc) = setup();
        let _ = cache;
        let before = amc.interval_cycles();
        // Simulate a window full of sleep misses.
        for i in 0..AmcConfig::default().window_misses {
            let addr = i * 16;
            amc.asleep.insert(addr, ());
            amc.on_miss(addr);
        }
        assert_eq!(amc.interval_cycles(), before * 2);
    }

    #[test]
    fn quiet_window_halves_the_interval() {
        let (cache, mut amc) = setup();
        let _ = cache;
        let before = amc.interval_cycles();
        for i in 0..AmcConfig::default().window_misses {
            amc.on_miss(i * 16); // none asleep → zero sleep-miss rate
        }
        assert_eq!(amc.interval_cycles(), before / 2);
    }

    #[test]
    fn interval_respects_bounds() {
        let (cache, mut amc) = setup();
        let _ = cache;
        let cfg = AmcConfig::default();
        // Push down for many windows.
        for _ in 0..32 {
            for i in 0..cfg.window_misses {
                amc.on_miss(i * 16);
            }
        }
        assert_eq!(amc.interval_cycles(), cfg.min_interval_cycles);
        // Push up for many windows.
        for _ in 0..32 {
            for i in 0..cfg.window_misses {
                let addr = i * 16;
                amc.asleep.insert(addr, ());
                amc.on_miss(addr);
            }
        }
        assert_eq!(amc.interval_cycles(), cfg.max_interval_cycles);
    }

    #[test]
    fn interval_survives_reboot() {
        let (mut cache, mut amc) = setup();
        for i in 0..AmcConfig::default().window_misses {
            let addr = i * 16;
            amc.asleep.insert(addr, ());
            amc.on_miss(addr);
        }
        let learned = amc.interval_cycles();
        cache.power_fail();
        amc.on_reboot(&cache);
        assert_eq!(amc.interval_cycles(), learned);
        assert!(amc.asleep.is_empty());
    }

    #[test]
    #[should_panic(expected = "bracket the initial interval")]
    fn rejects_inverted_bounds() {
        let cache = Cache::new(CacheConfig::paper_dcache());
        let _ = AdaptiveModeControl::new(
            AmcConfig {
                min_interval_cycles: 8192,
                initial_interval_cycles: 4096,
                ..AmcConfig::default()
            },
            &cache,
        );
    }
}
