//! EDBP — power-failure-aware dead block prediction for intermittent
//! computing, plus every comparator the paper evaluates against.
//!
//! This is the *policy* crate of the reproduction of "Rethinking Dead Block
//! Prediction for Intermittent Computing" (HPCA 2025). It contains:
//!
//! * [`Edbp`] — the paper's contribution: as the capacitor voltage decays
//!   through `n-1` thresholds, progressively power-gate near-LRU **zombie**
//!   blocks (blocks that look live but will be destroyed by the imminent
//!   power outage before any reuse), preferring clean blocks, always
//!   protecting the MRU block, and adapting the thresholds online from a
//!   sampled false-positive rate (Section V).
//! * [`CacheDecay`] — Kaxiras et al.'s time-based predictor (global counter
//!   + per-block 2-bit counters), the conventional comparator.
//! * [`AdaptiveModeControl`] — Zhou et al.'s AMC, which resizes the decay
//!   interval from the observed extra-miss rate (Related Work; included as
//!   the paper's Section VII-A argues EDBP composes with any predictor).
//! * [`ReusePredictor`] — the reuse filter that powers the SDBP checkpoint
//!   scheme (which blocks are worth checkpointing across an outage).
//! * [`OracleRecorder`] / [`OraclePredictor`] — the "Ideal" scheme: perfect
//!   knowledge of each block generation's last access.
//! * [`CombinedPredictor`] — composition (Cache Decay + EDBP et al.).
//! * [`PredictionLedger`] — zombie-aware TP/FP/TN/FN accounting with the
//!   paper's redefined coverage and accuracy (Section IV, Eqs. 1–2).
//!
//! Predictors are *policies over a mechanism*: they observe cache events and
//! decide which frames to power-gate via [`ehs_cache::Cache::gate`]. The
//! full-system simulator (`ehs-sim`) owns the event loop and charges the
//! energy costs of whatever a predictor asks for.
//!
//! # Example
//!
//! ```
//! use edbp_core::{Edbp, EdbpConfig, LeakagePredictor};
//! use ehs_cache::{AccessKind, Cache, CacheConfig};
//! use ehs_units::Voltage;
//!
//! let mut cache = Cache::new(CacheConfig::paper_dcache());
//! let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
//!
//! // Fill all four ways of one set (the paper cache has 64 sets of 16 B
//! // blocks, so addresses 0x400 apart collide).
//! for addr in [0x100u64, 0x500, 0x900, 0xD00] {
//!     cache.lookup(addr, AccessKind::Read);
//!     cache.fill(addr, &[0u8; 16], false);
//! }
//!
//! // Healthy voltage: EDBP stays dormant.
//! let quiet = edbp.tick(&mut cache, Voltage::from_volts(3.45), 0);
//! assert!(quiet.gated.is_empty());
//!
//! // Voltage sags toward the outage: EDBP starts killing near-LRU blocks.
//! let kill = edbp.tick(&mut cache, Voltage::from_volts(3.26), 1);
//! assert!(!kill.gated.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amc;
mod decay;
mod edbp;
pub mod fxhash;
mod metrics;
mod oracle;
mod paged;
mod predictor;
mod reuse;

pub use amc::{AdaptiveModeControl, AmcConfig};
pub use decay::{CacheDecay, DecayConfig};
pub use edbp::{Edbp, EdbpConfig};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use metrics::{PredictionClass, PredictionLedger, PredictionSummary};
pub use oracle::{GenerationTrace, OraclePredictor, OracleRecorder};
pub use paged::PagedTable;
pub use predictor::{
    CombinedPredictor, GatedBlock, LeakagePredictor, NullPredictor, Pair, TickOutcome, WakeHint,
    WritebackArena,
};
pub use reuse::{ReusePredictor, ReusePredictorConfig};
