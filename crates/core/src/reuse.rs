//! The reuse predictor behind SDBP (Liu et al. \[44\]).
//!
//! SDBP reduces the *checkpoint* cost of NVSRAM caches: instead of saving
//! every (dirty) block across a power failure, it saves only the blocks its
//! reuse predictor believes will be referenced again, and restores them at
//! reboot to fight the cold-cache effect. The predictor itself is a small
//! table of saturating counters trained on generation outcomes: did the
//! block get reused after it was filled?

/// Configuration of [`ReusePredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReusePredictorConfig {
    /// Number of table entries (power of two).
    pub entries: usize,
    /// Counter value at and above which a block is predicted "will be
    /// reused" (counters are 2-bit, 0..=3).
    pub predict_threshold: u8,
    /// Initial counter value (optimistic 2 keeps cold-start misses low at
    /// the price of some useless checkpoints).
    pub initial_value: u8,
}

impl Default for ReusePredictorConfig {
    fn default() -> Self {
        Self {
            entries: 256,
            predict_threshold: 2,
            initial_value: 2,
        }
    }
}

const COUNTER_MAX: u8 = 3;

/// Address-indexed table of 2-bit reuse counters.
///
/// # Examples
///
/// ```
/// use edbp_core::{ReusePredictor, ReusePredictorConfig};
///
/// let mut p = ReusePredictor::new(ReusePredictorConfig::default());
/// // Train: address 0x40's generations never see reuse.
/// for _ in 0..4 {
///     p.train(0x40, false);
/// }
/// assert!(!p.predicts_reuse(0x40));
/// p.train(0x40, true);
/// p.train(0x40, true);
/// assert!(p.predicts_reuse(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct ReusePredictor {
    config: ReusePredictorConfig,
    counters: Vec<u8>,
}

impl ReusePredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two or the threshold /
    /// initial value exceed the 2-bit range.
    pub fn new(config: ReusePredictorConfig) -> Self {
        assert!(
            config.entries > 0 && config.entries.is_power_of_two(),
            "table entries must be a nonzero power of two"
        );
        assert!(config.predict_threshold <= COUNTER_MAX);
        assert!(config.initial_value <= COUNTER_MAX);
        Self {
            counters: vec![config.initial_value; config.entries],
            config,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> ReusePredictorConfig {
        self.config
    }

    #[inline]
    fn index(&self, block_addr: u64) -> usize {
        // Fibonacci hashing of the block address into the table.
        let h = block_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.config.entries.trailing_zeros())) as usize
    }

    /// Trains the predictor with one finished generation: `reused` is true
    /// if the block was referenced again after its fill.
    pub fn train(&mut self, block_addr: u64, reused: bool) {
        let idx = self.index(block_addr);
        let c = &mut self.counters[idx];
        if reused {
            *c = (*c + 1).min(COUNTER_MAX);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predicts whether the block at `block_addr` will be reused — i.e.
    /// whether SDBP should spend checkpoint energy on it.
    pub fn predicts_reuse(&self, block_addr: u64) -> bool {
        self.counters[self.index(block_addr)] >= self.config.predict_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_cold_start() {
        let p = ReusePredictor::new(ReusePredictorConfig::default());
        assert!(p.predicts_reuse(0x1234));
    }

    #[test]
    fn training_down_flips_prediction() {
        let mut p = ReusePredictor::new(ReusePredictorConfig::default());
        p.train(0x40, false);
        p.train(0x40, false);
        assert!(!p.predicts_reuse(0x40));
    }

    #[test]
    fn counters_saturate_both_ways() {
        let mut p = ReusePredictor::new(ReusePredictorConfig::default());
        for _ in 0..10 {
            p.train(0x40, false);
        }
        for _ in 0..10 {
            p.train(0x40, true);
        }
        assert!(p.predicts_reuse(0x40));
        // Saturated high: one negative sample does not flip it.
        p.train(0x40, false);
        assert!(p.predicts_reuse(0x40));
    }

    #[test]
    fn distinct_addresses_use_distinct_entries_mostly() {
        let mut p = ReusePredictor::new(ReusePredictorConfig::default());
        // Drive one address to zero; a far-away address stays optimistic.
        for _ in 0..4 {
            p.train(0x0, false);
        }
        assert!(p.predicts_reuse(0x10_0000) || p.predicts_reuse(0x20_0000));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_table() {
        let _ = ReusePredictor::new(ReusePredictorConfig {
            entries: 100,
            ..Default::default()
        });
    }
}
