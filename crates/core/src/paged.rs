//! Two-level paged direct-index shadow tables keyed by block address.
//!
//! The hot loop needs per-block-address side tables (reuse flags, zombie
//! serials, asleep sets, residency ledgers, oracle cursors). Hash maps pay a
//! hash + probe per access and allocate as they grow; the synthetic
//! workloads' address spaces are bounded and dense, so a direct-index table
//! is both faster and allocation-free once warm. [`PagedTable`] is that
//! table:
//!
//! * **Two levels.** `addr >> shift` indexes a *spine* of lazily-allocated
//!   fixed-size pages ([`PAGE_SLOTS`] entries each), so sparse regions (for
//!   example instruction addresses, which sit megabytes above data) cost one
//!   spine slot, not a dense array spanning the gap.
//! * **Epoch-tagged entries.** Each entry stores the epoch it was written
//!   in; an entry is present iff its epoch matches the table's. [`clear`]
//!   bumps the epoch — O(1), and the pages (the allocation-free guarantee)
//!   are kept.
//! * **Deterministic iteration.** [`for_each`] walks pages in address
//!   order, so drains are reproducible (no hash-order dependence).
//!
//! [`clear`]: PagedTable::clear
//! [`for_each`]: PagedTable::for_each

/// Entries per page. 1024 keeps a page of small values within a few kB and
/// the spine short for the densely-packed data segment.
const PAGE_SLOTS: usize = 1024;

#[derive(Debug, Clone)]
struct Entry<T> {
    /// Epoch this entry was last written in; present iff it matches the
    /// table's epoch (which is never 0).
    epoch: u32,
    value: T,
}

/// A two-level paged direct-index map from (block) address to `T`.
///
/// Semantically a `HashMap<u64, T>` restricted to `Clone + Default` values;
/// see the module docs for the layout. Addresses sharing `addr >> shift`
/// collide, so `shift` must not exceed the alignment of the keys (use
/// [`PagedTable::for_block_bytes`] for block-aligned addresses, or
/// [`PagedTable::new`] with shift 0 for arbitrary keys).
#[derive(Debug, Clone)]
pub struct PagedTable<T> {
    pages: Vec<Option<Box<[Entry<T>]>>>,
    /// Current epoch; entries from older epochs are absent. Never 0.
    epoch: u32,
    /// Key compression: `index = addr >> shift`.
    shift: u32,
    /// Number of present entries.
    len: usize,
}

impl<T: Clone + Default> PagedTable<T> {
    /// Creates an empty table indexing by `addr >> shift`.
    pub fn new(shift: u32) -> Self {
        assert!(shift < 64, "shift must leave address bits");
        Self {
            pages: Vec::new(),
            epoch: 1,
            shift,
            len: 0,
        }
    }

    /// Creates an empty table for block-aligned addresses of the given
    /// block size: `shift = log2(block_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn for_block_bytes(block_bytes: u32) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self::new(block_bytes.trailing_zeros())
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, usize) {
        let index = (addr >> self.shift) as usize;
        (index / PAGE_SLOTS, index % PAGE_SLOTS)
    }

    /// Looks up `addr`.
    #[inline]
    pub fn get(&self, addr: u64) -> Option<&T> {
        let (page, slot) = self.locate(addr);
        match self.pages.get(page) {
            Some(Some(entries)) if entries[slot].epoch == self.epoch => Some(&entries[slot].value),
            _ => None,
        }
    }

    /// Looks up `addr` mutably.
    #[inline]
    pub fn get_mut(&mut self, addr: u64) -> Option<&mut T> {
        let epoch = self.epoch;
        let (page, slot) = self.locate(addr);
        match self.pages.get_mut(page) {
            Some(Some(entries)) if entries[slot].epoch == epoch => Some(&mut entries[slot].value),
            _ => None,
        }
    }

    /// True if `addr` is present.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        self.get(addr).is_some()
    }

    /// Ensures the page covering `addr` exists and returns its entry slot.
    /// The only allocation site; a page is touched at most once per run.
    fn entry_slot(&mut self, addr: u64) -> &mut Entry<T> {
        let (page, slot) = self.locate(addr);
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        let entries = self.pages[page].get_or_insert_with(|| {
            vec![
                Entry {
                    epoch: 0,
                    value: T::default(),
                };
                PAGE_SLOTS
            ]
            .into_boxed_slice()
        });
        &mut entries[slot]
    }

    /// Inserts `value` at `addr`, returning the previous value if present.
    #[inline]
    pub fn insert(&mut self, addr: u64, value: T) -> Option<T> {
        let epoch = self.epoch;
        let entry = self.entry_slot(addr);
        let old = if entry.epoch == epoch {
            Some(std::mem::replace(&mut entry.value, value))
        } else {
            entry.epoch = epoch;
            entry.value = value;
            None
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns the value at `addr`, inserting `make()` first if absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, addr: u64, make: impl FnOnce() -> T) -> &mut T {
        let epoch = self.epoch;
        let (page, slot) = self.locate(addr);
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        let entries = self.pages[page].get_or_insert_with(|| {
            vec![
                Entry {
                    epoch: 0,
                    value: T::default(),
                };
                PAGE_SLOTS
            ]
            .into_boxed_slice()
        });
        let entry = &mut entries[slot];
        if entry.epoch != epoch {
            entry.epoch = epoch;
            entry.value = make();
            self.len += 1;
        }
        &mut entry.value
    }

    /// Removes and returns the value at `addr`.
    #[inline]
    pub fn remove(&mut self, addr: u64) -> Option<T> {
        let epoch = self.epoch;
        let (page, slot) = self.locate(addr);
        match self.pages.get_mut(page) {
            Some(Some(entries)) if entries[slot].epoch == epoch => {
                entries[slot].epoch = 0;
                self.len -= 1;
                Some(std::mem::take(&mut entries[slot].value))
            }
            _ => None,
        }
    }

    /// Removes every entry in O(1) by bumping the epoch. Pages are kept, so
    /// refilling the same address range allocates nothing.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap: stale entries from epoch 1 would resurrect. Hard
            // reset every page (cold path: one wrap per 4 billion clears).
            for page in self.pages.iter_mut().flatten() {
                for entry in page.iter_mut() {
                    entry.epoch = 0;
                }
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.len = 0;
    }

    /// Removes every present address in `addrs`, invoking `f` with each
    /// removed `(addr, value)` in input order.
    ///
    /// Bit-identical to calling [`remove`] per address; the difference is
    /// the batch cursor: consecutive addresses landing on the same page
    /// resolve the spine (bounds check + option match) once per run, not
    /// once per address. Drains that walk the cache in set order or an
    /// ascending resident set are page-local almost everywhere, so the
    /// two-level walk all but disappears.
    ///
    /// [`remove`]: PagedTable::remove
    pub fn remove_batch(
        &mut self,
        addrs: impl IntoIterator<Item = u64>,
        mut f: impl FnMut(u64, T),
    ) {
        let epoch = self.epoch;
        let shift = self.shift;
        let mut removed = 0usize;
        let mut iter = addrs.into_iter();
        let mut next = iter.next();
        while let Some(first) = next {
            let index = (first >> shift) as usize;
            let page = index / PAGE_SLOTS;
            match self.pages.get_mut(page) {
                Some(Some(entries)) => {
                    let mut addr = first;
                    let mut slot = index % PAGE_SLOTS;
                    loop {
                        let entry = &mut entries[slot];
                        if entry.epoch == epoch {
                            entry.epoch = 0;
                            removed += 1;
                            f(addr, std::mem::take(&mut entry.value));
                        }
                        next = iter.next();
                        let Some(n) = next else { break };
                        let ni = (n >> shift) as usize;
                        if ni / PAGE_SLOTS != page {
                            break;
                        }
                        addr = n;
                        slot = ni % PAGE_SLOTS;
                    }
                }
                _ => {
                    // The page was never allocated: nothing on it can be
                    // present, so the whole same-page run is a no-op.
                    next = iter.next();
                    while let Some(n) = next {
                        if ((n >> shift) as usize) / PAGE_SLOTS != page {
                            break;
                        }
                        next = iter.next();
                    }
                }
            }
        }
        self.len -= removed;
    }

    /// Inserts a clone of `value` at every address in `addrs`, overwriting
    /// entries already present. The bulk counterpart of [`insert`] with the
    /// same page-run cursor as [`remove_batch`], for drains that mark a
    /// whole (page-local) address set at once.
    ///
    /// [`insert`]: PagedTable::insert
    /// [`remove_batch`]: PagedTable::remove_batch
    pub fn fill_batch(&mut self, addrs: impl IntoIterator<Item = u64>, value: T) {
        let epoch = self.epoch;
        let shift = self.shift;
        let mut added = 0usize;
        let mut iter = addrs.into_iter();
        let mut next = iter.next();
        while let Some(first) = next {
            let index = (first >> shift) as usize;
            let page = index / PAGE_SLOTS;
            let mut slot = index % PAGE_SLOTS;
            if page >= self.pages.len() {
                self.pages.resize_with(page + 1, || None);
            }
            let entries = self.pages[page].get_or_insert_with(|| {
                vec![
                    Entry {
                        epoch: 0,
                        value: T::default(),
                    };
                    PAGE_SLOTS
                ]
                .into_boxed_slice()
            });
            loop {
                let entry = &mut entries[slot];
                if entry.epoch != epoch {
                    entry.epoch = epoch;
                    added += 1;
                }
                entry.value = value.clone();
                next = iter.next();
                let Some(n) = next else { break };
                let ni = (n >> shift) as usize;
                if ni / PAGE_SLOTS != page {
                    break;
                }
                slot = ni % PAGE_SLOTS;
            }
        }
        self.len += added;
    }

    /// Visits every present `(addr, value)` in ascending address order.
    pub fn for_each(&self, mut f: impl FnMut(u64, &T)) {
        for (page_idx, page) in self.pages.iter().enumerate() {
            let Some(entries) = page else { continue };
            for (slot, entry) in entries.iter().enumerate() {
                if entry.epoch == self.epoch {
                    let addr = ((page_idx * PAGE_SLOTS + slot) as u64) << self.shift;
                    f(addr, &entry.value);
                }
            }
        }
    }
}

impl<T: Clone + Default> Default for PagedTable<T> {
    /// An empty table with shift 0 (index = address).
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = PagedTable::for_block_bytes(16);
        assert!(t.is_empty());
        assert_eq!(t.insert(0x40, 7u32), None);
        assert_eq!(t.insert(0x40, 9), Some(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0x40), Some(&9));
        assert_eq!(t.get(0x50), None);
        assert_eq!(t.remove(0x40), Some(9));
        assert_eq!(t.remove(0x40), None);
        assert!(t.is_empty());
    }

    #[test]
    fn clear_is_epoch_bump_and_keeps_pages() {
        let mut t = PagedTable::for_block_bytes(16);
        for i in 0..100u64 {
            t.insert(i * 16, i);
        }
        let pages_before = t.pages.iter().filter(|p| p.is_some()).count();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(0x40), None);
        assert_eq!(
            t.pages.iter().filter(|p| p.is_some()).count(),
            pages_before,
            "clear must keep pages allocated"
        );
        // Reinsert after clear: visible again, old values gone.
        assert_eq!(t.insert(0x40, 1), None);
        assert_eq!(t.get(0x40), Some(&1));
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut t: PagedTable<u32> = PagedTable::new(0);
        *t.get_or_insert_with(5, || 10) += 1;
        *t.get_or_insert_with(5, || 99) += 1;
        assert_eq!(t.get(5), Some(&12));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn for_each_is_in_address_order_and_reconstructs_addrs() {
        let mut t = PagedTable::for_block_bytes(16);
        // Insert out of order, spanning multiple pages (page = 1024 slots).
        for addr in [0x40_0000u64, 0x10, 0x8000, 0x40] {
            t.insert(addr, addr);
        }
        let mut seen = Vec::new();
        t.for_each(|addr, &v| {
            assert_eq!(addr, v);
            seen.push(addr);
        });
        assert_eq!(seen, vec![0x10, 0x40, 0x8000, 0x40_0000]);
    }

    #[test]
    fn sparse_high_addresses_use_one_page() {
        let mut t: PagedTable<bool> = PagedTable::for_block_bytes(16);
        t.insert(0x0100_0000, true); // instruction-segment-like address
        assert_eq!(t.get(0x0100_0000), Some(&true));
        let allocated = t.pages.iter().filter(|p| p.is_some()).count();
        assert_eq!(allocated, 1, "one page, not a dense array");
    }

    #[test]
    fn epoch_wrap_does_not_resurrect_entries() {
        let mut t: PagedTable<u8> = PagedTable::new(0);
        t.insert(3, 42);
        t.epoch = u32::MAX; // simulate 4 billion clears
        t.insert(7, 7);
        t.clear();
        assert_eq!(t.get(3), None, "epoch-1 entry must not resurrect");
        assert_eq!(t.get(7), None);
        assert!(t.is_empty());
        t.insert(3, 1);
        assert_eq!(t.get(3), Some(&1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_blocks() {
        let _ = PagedTable::<u8>::for_block_bytes(12);
    }

    #[test]
    fn remove_batch_matches_per_element_removes() {
        // Mixed-page, mixed-presence drain: present entries, absent slots on
        // an allocated page, a whole never-allocated page, and a duplicate
        // (second occurrence sees the slot already drained).
        let addrs = [0x10u64, 0x40, 0x40, 0x8000, 0x0100_0000, 0x0200_0000];
        let mut batched = PagedTable::for_block_bytes(16);
        let mut scalar = PagedTable::for_block_bytes(16);
        for addr in [0x10u64, 0x40, 0x8000, 0x50] {
            batched.insert(addr, addr as u32);
            scalar.insert(addr, addr as u32);
        }
        let mut got = Vec::new();
        batched.remove_batch(addrs.iter().copied(), |a, v| got.push((a, v)));
        let mut want = Vec::new();
        for &a in &addrs {
            if let Some(v) = scalar.remove(a) {
                want.push((a, v));
            }
        }
        assert_eq!(got, want);
        assert_eq!(batched.len(), scalar.len());
        assert_eq!(batched.get(0x50), Some(&0x50), "untouched entry survives");
    }

    #[test]
    fn fill_batch_matches_per_element_inserts() {
        let addrs = [0x10u64, 0x10, 0x40, 0x0100_0000];
        let mut batched = PagedTable::for_block_bytes(16);
        let mut scalar = PagedTable::for_block_bytes(16);
        batched.insert(0x40, 9u32);
        scalar.insert(0x40, 9u32);
        batched.fill_batch(addrs.iter().copied(), 7);
        for &a in &addrs {
            scalar.insert(a, 7);
        }
        for &a in &addrs {
            assert_eq!(batched.get(a), scalar.get(a));
        }
        assert_eq!(batched.len(), scalar.len());
    }

    #[test]
    fn batch_ops_on_empty_iterator_are_no_ops() {
        let mut t: PagedTable<u32> = PagedTable::for_block_bytes(16);
        t.insert(0x40, 1);
        t.remove_batch(std::iter::empty(), |_, _| panic!("nothing to drain"));
        t.fill_batch(std::iter::empty(), 0);
        assert_eq!(t.len(), 1);
    }
}

/// Property tests pinning [`PagedTable`] to `HashMap` semantics under random
/// op mixes (the same pinning pattern the cache's packed rank words use).
#[cfg(test)]
mod model_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u32),
        Remove(u64),
        Get(u64),
        GetOrInsert(u64, u32),
        RemoveBatch(Vec<u64>),
        FillBatch(Vec<u64>, u32),
        Clear,
    }

    /// Small address universe (block-aligned) to force collisions, plus a
    /// sparse high range to exercise multi-page spines.
    fn addr_strategy() -> impl Strategy<Value = u64> {
        prop_oneof![
            (0u64..64).prop_map(|i| i * 16),
            (0u64..4).prop_map(|i| 0x0100_0000 + i * 16),
        ]
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (addr_strategy(), 0u32..1000).prop_map(|(a, v)| Op::Insert(a, v)),
            2 => addr_strategy().prop_map(Op::Remove),
            3 => addr_strategy().prop_map(Op::Get),
            2 => (addr_strategy(), 0u32..1000).prop_map(|(a, v)| Op::GetOrInsert(a, v)),
            2 => proptest::collection::vec(addr_strategy(), 0..12).prop_map(Op::RemoveBatch),
            2 => (proptest::collection::vec(addr_strategy(), 0..12), 0u32..1000)
                .prop_map(|(a, v)| Op::FillBatch(a, v)),
            1 => Just(Op::Clear),
        ]
    }

    proptest! {
        #[test]
        fn paged_table_matches_hashmap(
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            let mut table = PagedTable::for_block_bytes(16);
            let mut model: HashMap<u64, u32> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(a, v) => {
                        prop_assert_eq!(table.insert(a, v), model.insert(a, v));
                    }
                    Op::Remove(a) => {
                        prop_assert_eq!(table.remove(a), model.remove(&a));
                    }
                    Op::Get(a) => {
                        prop_assert_eq!(table.get(a), model.get(&a));
                        prop_assert_eq!(table.contains(a), model.contains_key(&a));
                    }
                    Op::GetOrInsert(a, v) => {
                        let got = *table.get_or_insert_with(a, || v);
                        let want = *model.entry(a).or_insert(v);
                        prop_assert_eq!(got, want);
                    }
                    Op::RemoveBatch(ref addrs) => {
                        let mut got = Vec::new();
                        table.remove_batch(addrs.iter().copied(), |a, v| got.push((a, v)));
                        let mut want = Vec::new();
                        for &a in addrs {
                            if let Some(v) = model.remove(&a) {
                                want.push((a, v));
                            }
                        }
                        prop_assert_eq!(got, want, "remove_batch order/content");
                    }
                    Op::FillBatch(ref addrs, v) => {
                        table.fill_batch(addrs.iter().copied(), v);
                        for &a in addrs {
                            model.insert(a, v);
                        }
                    }
                    Op::Clear => {
                        table.clear();
                        model.clear();
                    }
                }
                prop_assert_eq!(table.len(), model.len());
                let mut walked: Vec<(u64, u32)> = Vec::new();
                table.for_each(|a, &v| walked.push((a, v)));
                let mut want: Vec<(u64, u32)> = model.iter().map(|(&a, &v)| (a, v)).collect();
                want.sort_unstable();
                prop_assert_eq!(walked, want, "for_each must be sorted + complete");
            }
        }
    }
}
