//! The "Ideal" predictor: perfect knowledge of block deaths (Section VI-E).
//!
//! The paper's theoretical optimum assumes an oracle that knows exactly when
//! each cache block has received its last access before eviction or power
//! outage and "magically" turns it off at that instant — saving the maximum
//! leakage with zero extra misses.
//!
//! We realize this with two passes, as the paper's methodology implies:
//!
//! 1. **Record** (baseline run): [`OracleRecorder`] observes the access
//!    stream and produces a [`GenerationTrace`] — for each block address,
//!    each generation's total access count (fill + hits) and whether the
//!    generation ended at a power outage or a normal eviction.
//! 2. **Replay** (oracle run): [`OraclePredictor`] pops the per-generation
//!    access budget at every fill; the moment a block consumes its budget it
//!    is power-gated.
//!
//! Because gating changes energy draw and therefore outage timing, the
//! replayed schedule can drift from the recorded one. Two safeguards keep
//! the oracle honest:
//!
//! * fills with no recorded generation left are simply kept (conservative);
//! * generations that ended *at an outage* only gate once the replay's own
//!   supply voltage has sagged below a guard threshold — i.e. when an outage
//!   is plausibly imminent in the replay too. Eviction-ended generations
//!   (stable across passes) gate unconditionally.
//!
//! The result is a slightly *pessimistic* ideal — a lower bound on the true
//! optimum — which is the honest direction to err in.

use crate::fxhash::FxHashMap;
use crate::paged::PagedTable;
use crate::{GatedBlock, LeakagePredictor, TickOutcome, WakeHint};
use ehs_cache::{BlockId, Cache, GateResult};
use ehs_units::Voltage;
use std::collections::VecDeque;

/// One recorded generation: its access count, how it ended, and whether it
/// began as a checkpoint restore (rather than a demand fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Generation {
    accesses: u32,
    ended_by_outage: bool,
    restored: bool,
}

/// Per-address, per-generation access records from a baseline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenerationTrace {
    generations: FxHashMap<u64, VecDeque<Generation>>,
}

impl GenerationTrace {
    /// Total number of recorded generations.
    pub fn len(&self) -> usize {
        self.generations.values().map(VecDeque::len).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.generations.is_empty()
    }
}

/// Records block generations during a baseline (pass-1) run.
///
/// Drive it with the same events a predictor sees — fills, hits, evictions
/// and power failures — then call [`OracleRecorder::finish`].
#[derive(Debug, Clone, Default)]
pub struct OracleRecorder {
    trace: GenerationTrace,
}

impl OracleRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A block for `addr` was installed (or restored): a new generation
    /// begins, with the installing access counted. Until it is explicitly
    /// ended, the generation is presumed outage-ended (the conservative
    /// guard applies).
    pub fn on_fill(&mut self, addr: u64) {
        self.push_generation(addr, false);
    }

    /// A block for `addr` was restored from the checkpoint at reboot: a new
    /// generation begins, tagged as restore-origin so the replay pass keys
    /// against the same kind of fill.
    pub fn on_restore(&mut self, addr: u64) {
        self.push_generation(addr, true);
    }

    fn push_generation(&mut self, addr: u64, restored: bool) {
        self.trace
            .generations
            .entry(addr)
            .or_default()
            .push_back(Generation {
                accesses: 1,
                ended_by_outage: true,
                restored,
            });
    }

    /// A lookup hit `addr`: the current generation gains an access.
    pub fn on_hit(&mut self, addr: u64) {
        if let Some(gens) = self.trace.generations.get_mut(&addr) {
            if let Some(last) = gens.back_mut() {
                last.accesses += 1;
            }
        }
    }

    /// The block at `addr` was evicted: its generation ended stably.
    pub fn on_evict(&mut self, addr: u64) {
        if let Some(gens) = self.trace.generations.get_mut(&addr) {
            if let Some(last) = gens.back_mut() {
                last.ended_by_outage = false;
            }
        }
    }

    /// Consumes the recorder, yielding the trace for the replay pass.
    pub fn finish(self) -> GenerationTrace {
        self.trace
    }
}

/// Replays a [`GenerationTrace`] as the ideal dead/zombie block predictor.
///
/// The recorded per-address generation queues are flattened at construction
/// into one contiguous arena, sorted by address, with a `(next, end)` cursor
/// pair per address. Replaying a generation is then a cursor bump — no
/// per-address `VecDeque`s, no hashing, no allocation on the replay path.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    /// All recorded generations, grouped by address (ascending), each
    /// address's generations in recorded order.
    arena: Vec<Generation>,
    /// Per-address `(next, end)` index range into `arena`; the cursor is
    /// exhausted when `next == end`.
    cursors: PagedTable<(u32, u32)>,
    /// Resident blocks: (remaining accesses, outage-ended flag).
    live: PagedTable<(u32, bool)>,
    /// Blocks whose budgets ran out: (addr, guarded). Guarded kills wait for
    /// the voltage guard.
    pending_kill: Vec<(u64, bool)>,
    /// Outage-ended generations gate only below this voltage.
    guard: Voltage,
}

impl OraclePredictor {
    /// Default voltage guard: just under the restore threshold, i.e. "the
    /// supply is sagging".
    pub const DEFAULT_GUARD: Voltage = Voltage::from_base(3.38);

    /// Creates the oracle from a recorded trace with the default guard.
    pub fn new(trace: GenerationTrace) -> Self {
        Self::with_guard(trace, Self::DEFAULT_GUARD)
    }

    /// Creates the oracle with an explicit voltage guard.
    pub fn with_guard(trace: GenerationTrace, guard: Voltage) -> Self {
        let mut per_addr: Vec<(u64, VecDeque<Generation>)> =
            trace.generations.into_iter().collect();
        per_addr.sort_unstable_by_key(|&(addr, _)| addr);
        let total: usize = per_addr.iter().map(|(_, q)| q.len()).sum();
        assert!(u32::try_from(total).is_ok(), "generation trace too large");
        let mut arena = Vec::with_capacity(total);
        let mut cursors = PagedTable::new(0);
        for (addr, queue) in per_addr {
            let start = arena.len() as u32;
            arena.extend(queue);
            let end = arena.len() as u32;
            if end > start {
                cursors.insert(addr, (start, end));
            }
        }
        Self {
            arena,
            cursors,
            live: PagedTable::new(0),
            pending_kill: Vec::new(),
            guard,
        }
    }

    fn consume(&mut self, addr: u64) {
        if let Some((left, outage_ended)) = self.live.get_mut(addr) {
            *left = left.saturating_sub(1);
            if *left == 0 {
                let guarded = *outage_ended;
                self.live.remove(addr);
                self.pending_kill.push((addr, guarded));
            }
        }
    }

    /// Starts a generation if the recorded queue head matches the fill
    /// origin; a mismatch means the schedules have drifted, so the block is
    /// conservatively kept and the cursor left untouched.
    fn begin_generation(&mut self, addr: u64, restored: bool) {
        let Some(cursor) = self.cursors.get_mut(addr) else {
            return;
        };
        let (next, end) = *cursor;
        if next == end {
            return;
        }
        let front = self.arena[next as usize];
        if front.restored != restored {
            return;
        }
        cursor.0 = next + 1;
        if front.accesses == 1 {
            self.pending_kill.push((addr, front.ended_by_outage));
        } else {
            self.live
                .insert(addr, (front.accesses - 1, front.ended_by_outage));
        }
    }
}

impl LeakagePredictor for OraclePredictor {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn on_fill(&mut self, _cache: &Cache, _block: BlockId, addr: u64) {
        self.begin_generation(addr, false);
    }

    fn on_restore_fill(&mut self, _cache: &Cache, _block: BlockId, addr: u64) {
        self.begin_generation(addr, true);
    }

    fn on_hit(&mut self, _cache: &Cache, _block: BlockId, addr: u64) {
        self.consume(addr);
    }

    fn on_evict(&mut self, addr: u64) {
        self.live.remove(addr);
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        voltage: Voltage,
        _cycle: u64,
        out: &mut TickOutcome,
    ) {
        let release = voltage < self.guard;
        // In-place compaction: entries that must wait slide to the front,
        // the rest are gated. No scratch allocation.
        let mut kept = 0;
        for i in 0..self.pending_kill.len() {
            let (addr, guarded) = self.pending_kill[i];
            if guarded && !release {
                self.pending_kill[kept] = (addr, guarded);
                kept += 1;
                continue;
            }
            let Some(block) = cache.contains(addr) else {
                continue; // already evicted or gated by a co-predictor
            };
            // The ideal predictor enjoys the NVSRAM parking path (the sink
            // fires only for a dirty valid block).
            let parked = &mut out.parked;
            match cache.gate_with(block, |a, data| parked.push(a, data)) {
                GateResult::GatedValid { addr, dirty } => {
                    out.gated.push(GatedBlock { addr, dirty });
                }
                GateResult::GatedInvalid | GateResult::AlreadyGated => {}
            }
        }
        self.pending_kill.truncate(kept);
    }

    fn next_wakeup(&self) -> WakeHint {
        // With nothing pending, a tick drains an empty list: pure no-op.
        // Pending kills only appear through `on_hit`/`on_fill` hooks, which
        // invalidate hints. All-guarded kills wait for the voltage guard
        // (strict `voltage < guard`); any unguarded kill fires on the very
        // next tick, so the hint must demand one.
        if self.pending_kill.is_empty() {
            WakeHint::NEVER
        } else if self.pending_kill.iter().all(|&(_, guarded)| guarded) {
            WakeHint {
                at_cycle: None,
                below_voltage: Some(self.guard),
                every_cycle: false,
            }
        } else {
            WakeHint::EVERY_CYCLE
        }
    }

    fn on_reboot(&mut self, _cache: &Cache) {
        self.live.clear();
        self.pending_kill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::{AccessKind, CacheConfig};

    const V_HIGH: Voltage = Voltage::from_base(3.5);
    const V_LOW: Voltage = Voltage::from_base(3.25);

    /// Replays an access sequence through a recorder-driven cache; evictions
    /// are reported, and the run ends with a power failure.
    fn record(seq: &[u64]) -> GenerationTrace {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut rec = OracleRecorder::new();
        for &addr in seq {
            match cache.lookup(addr, AccessKind::Read) {
                ehs_cache::LookupOutcome::Hit(_) => rec.on_hit(addr),
                ehs_cache::LookupOutcome::Miss(miss) => {
                    if let Some(ev) = miss.evicted {
                        rec.on_evict(ev);
                    }
                    cache.fill(addr, &[0u8; 16], false);
                    rec.on_fill(addr);
                }
            }
        }
        rec.finish()
    }

    #[test]
    fn recorder_counts_generations() {
        let trace = record(&[0x40, 0x40, 0x40, 0x80]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn outage_ended_generation_waits_for_the_guard() {
        // Single generation, never evicted → outage-ended.
        let trace = record(&[0x40]);
        let mut oracle = OraclePredictor::new(trace);
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        cache.lookup(0x40, AccessKind::Read);
        let id = cache.fill(0x40, &[0u8; 16], false);
        oracle.on_fill(&cache, id, 0x40);
        // Healthy supply: the guarded kill must wait.
        assert!(oracle.tick(&mut cache, V_HIGH, 0).gated.is_empty());
        assert!(cache.contains(0x40).is_some());
        // Sagging supply: now it fires.
        let out = oracle.tick(&mut cache, V_LOW, 1);
        assert_eq!(out.gated.len(), 1);
        assert_eq!(out.gated[0].addr, 0x40);
    }

    #[test]
    fn eviction_ended_generation_gates_immediately() {
        // 0x40's first generation is evicted in pass 1 by the conflicting
        // fills (paper cache: 64 sets → 0x400 apart collide in set 0).
        let seq = [0x000, 0x400, 0x800, 0xC00, 0x1000, 0x1400];
        let trace = record(&seq);
        let mut oracle = OraclePredictor::new(trace);
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        // Replay only the first fill; its generation is eviction-ended with
        // a single access, so it dies immediately even at high voltage.
        cache.lookup(0x000, AccessKind::Read);
        let id = cache.fill(0x000, &[0u8; 16], false);
        oracle.on_fill(&cache, id, 0x000);
        let out = oracle.tick(&mut cache, V_HIGH, 0);
        assert_eq!(out.gated.len(), 1);
    }

    #[test]
    fn oracle_never_causes_an_extra_miss() {
        let seq = [0x40, 0x80, 0x40, 0xC0, 0x40, 0x80];
        let trace = record(&seq);
        let mut oracle = OraclePredictor::new(trace);
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut extra_misses = 0;
        let mut seen = std::collections::HashSet::new();
        for &addr in &seq {
            match cache.lookup(addr, AccessKind::Read) {
                ehs_cache::LookupOutcome::Hit(h) => {
                    oracle.on_hit(&cache, h.block, addr);
                }
                ehs_cache::LookupOutcome::Miss(_) => {
                    if seen.contains(&addr) {
                        extra_misses += 1;
                    }
                    let id = cache.fill(addr, &[0u8; 16], false);
                    oracle.on_fill(&cache, id, addr);
                }
            }
            seen.insert(addr);
            let _ = oracle.tick(&mut cache, V_LOW, 0);
        }
        assert_eq!(extra_misses, 0);
    }

    #[test]
    fn unknown_fill_is_kept_conservatively() {
        let trace = record(&[0x40]);
        let mut oracle = OraclePredictor::new(trace);
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        cache.lookup(0xF00, AccessKind::Read);
        let id = cache.fill(0xF00, &[0u8; 16], false);
        oracle.on_fill(&cache, id, 0xF00);
        assert!(oracle.tick(&mut cache, V_LOW, 0).gated.is_empty());
        assert!(cache.contains(0xF00).is_some());
    }

    #[test]
    fn reboot_clears_pending_state() {
        let trace = record(&[0x40]);
        let mut oracle = OraclePredictor::new(trace);
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        cache.lookup(0x40, AccessKind::Read);
        let id = cache.fill(0x40, &[0u8; 16], false);
        oracle.on_fill(&cache, id, 0x40);
        cache.power_fail();
        oracle.on_reboot(&cache);
        let out = oracle.tick(&mut cache, V_LOW, 0);
        assert!(out.gated.is_empty());
    }
}
