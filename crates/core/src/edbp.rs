//! EDBP — the paper's contribution: voltage-guided zombie-block deactivation.

use crate::{GatedBlock, LeakagePredictor, TickOutcome, WakeHint};
use ehs_cache::{Cache, GateResult, WayView, MAX_WAYS};
use ehs_units::Voltage;
use std::collections::VecDeque;

/// Configuration of [`Edbp`].
///
/// For an `n`-way cache EDBP arms `n-1` voltage thresholds, highest first
/// (Section V-B): dipping below threshold `i` gates the `i` LRU-most *clean*
/// blocks of every set; dipping below the last threshold gates **all**
/// non-MRU blocks, dirty ones included (after write-back). A direct-mapped
/// cache gets a single threshold that deactivates every block.
#[derive(Debug, Clone, PartialEq)]
pub struct EdbpConfig {
    /// Thresholds in strictly descending order; length is `ways - 1`
    /// (or 1 for a direct-mapped cache).
    pub initial_thresholds: Vec<Voltage>,
    /// How much every threshold is lowered when the false-positive rate
    /// exceeds [`EdbpConfig::reference_fpr`] (paper: 50 mV).
    pub adjustment_step: Voltage,
    /// The reference false-positive rate of the adaptation loop.
    pub reference_fpr: f64,
    /// Thresholds are never adjusted below this voltage (the JIT checkpoint
    /// threshold — below it the system is checkpointing anyway).
    pub floor: Voltage,
    /// The single cache set whose statistics feed the adaptation (Section
    /// V-B1's sampling mechanism).
    pub sample_set: u32,
    /// Capacity of the SRAM deactivation buffer (paper default: 8).
    pub deactivation_buffer_entries: usize,
    /// Never gate the MRU block (Section V-B's reuse heuristic). Disabling
    /// this is an ablation, not a paper configuration.
    pub protect_mru: bool,
    /// Only gate clean blocks at the intermediate thresholds (Section V-A's
    /// second principle). Disabling this is an ablation.
    pub clean_first: bool,
}

impl EdbpConfig {
    /// Default thresholds for a cache with `ways` ways: evenly spaced from
    /// 3.30 V down to 3.24 V (between the paper's restore and checkpoint
    /// thresholds), 50 mV adaptation step, 5% reference FPR, 3.2 V floor.
    pub fn for_ways(ways: u8) -> Self {
        let count = usize::from(ways.max(2)) - 1;
        let hi = 3.30;
        let lo = 3.24;
        let thresholds = if ways <= 1 {
            vec![Voltage::from_volts(lo)]
        } else if count == 1 {
            vec![Voltage::from_volts((hi + lo) / 2.0)]
        } else {
            (0..count)
                .map(|i| {
                    let f = i as f64 / (count - 1) as f64;
                    Voltage::from_volts(hi - f * (hi - lo))
                })
                .collect()
        };
        Self {
            initial_thresholds: thresholds,
            adjustment_step: Voltage::from_milli_volts(50.0),
            reference_fpr: 0.05,
            floor: Voltage::from_volts(3.2),
            sample_set: 0,
            deactivation_buffer_entries: 8,
            protect_mru: true,
            clean_first: true,
        }
    }

    /// Default configuration sized for `cache`.
    pub fn for_cache(cache: &Cache) -> Self {
        let mut cfg = Self::for_ways(cache.ways());
        // Sample a mid-index set so leader sets of dueling policies (set 0)
        // do not double as the EDBP sample.
        cfg.sample_set = cache.sets() / 2;
        cfg
    }

    /// Validates that thresholds are strictly descending and above the floor.
    ///
    /// # Panics
    ///
    /// Panics on violation; configurations are built by code, not users, so
    /// this is a programming error.
    fn assert_valid(&self) {
        assert!(
            !self.initial_thresholds.is_empty(),
            "EDBP needs at least one threshold"
        );
        for pair in self.initial_thresholds.windows(2) {
            assert!(
                pair[0] > pair[1],
                "thresholds must be strictly descending: {:?}",
                self.initial_thresholds
            );
        }
        assert!(
            *self.initial_thresholds.last().expect("non-empty") >= self.floor,
            "lowest threshold below the adjustment floor"
        );
        assert!(
            self.deactivation_buffer_entries > 0,
            "buffer cannot be empty"
        );
        assert!(
            (0.0..=1.0).contains(&self.reference_fpr),
            "reference FPR must be a rate"
        );
    }
}

/// The EDBP predictor (Section V).
///
/// EDBP is dormant while the supply is healthy; the conventional predictor
/// (if any) owns that regime. As the capacitor voltage decays through the
/// armed thresholds, EDBP sweeps the cache and power-gates blocks that are
/// about to become zombies, most-expendable first:
///
/// 1. near-LRU **clean** blocks at the higher thresholds (cheap to kill —
///    no write-back — and least likely to be re-referenced in the little
///    time left);
/// 2. every **non-MRU** block, dirty included, at the lowest threshold
///    (outage is imminent; write-back now is work the JIT checkpoint would
///    have done anyway);
/// 3. the MRU block is never touched (Section V-B's reuse heuristic).
///
/// The threshold ladder re-arms at every reboot, and its rungs move: if the
/// sampled false-positive rate of the previous power cycle exceeded the
/// reference, all thresholds drop by 50 mV (kill later, more conservatively);
/// otherwise they return to their initial values.
#[derive(Debug, Clone)]
pub struct Edbp {
    config: EdbpConfig,
    /// Current (possibly adapted) thresholds, descending.
    thresholds: Vec<Voltage>,
    /// How many thresholds have been crossed this power cycle (ratchets up).
    level: usize,
    /// R_WrongKill: sampled-set blocks gated this cycle and re-requested.
    wrong_kill: u64,
    /// R_Total: sampled-set blocks gated this cycle.
    total_predicted: u64,
    /// R_FPR: last computed false-positive rate.
    fpr: f64,
    /// The SRAM deactivation buffer of sampled-set gated addresses.
    buffer: VecDeque<u64>,
}

impl Edbp {
    /// Creates an EDBP instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (thresholds
    /// not descending, empty buffer, FPR not a rate).
    pub fn new(config: EdbpConfig) -> Self {
        config.assert_valid();
        Self {
            thresholds: config.initial_thresholds.clone(),
            level: 0,
            wrong_kill: 0,
            total_predicted: 0,
            fpr: 0.0,
            buffer: VecDeque::with_capacity(config.deactivation_buffer_entries),
            config,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &EdbpConfig {
        &self.config
    }

    /// The currently armed thresholds (after adaptation), descending.
    pub fn thresholds(&self) -> &[Voltage] {
        &self.thresholds
    }

    /// Number of thresholds currently crossed this power cycle.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The false-positive rate computed at the last reboot (R_FPR).
    pub fn false_positive_rate(&self) -> f64 {
        self.fpr
    }

    /// Applies one threshold level: sweeps every set and gates the blocks
    /// that level condemns, appending to `out`.
    fn apply_level(&mut self, cache: &mut Cache, level: usize, out: &mut TickOutcome) {
        let mut views = [WayView::default(); MAX_WAYS];
        let ways = cache.ways();
        let last_level = self.thresholds.len();
        let is_last = level == last_level;
        for set in 0..cache.sets() {
            let n = cache.set_view_into(set, &mut views);
            for view in &views[..n] {
                if !view.valid {
                    continue;
                }
                let min_rank = if self.config.protect_mru { 1 } else { 0 };
                let condemned = if ways == 1 {
                    // Direct-mapped: the single threshold kills everything.
                    true
                } else if is_last {
                    // Lowest threshold: all non-MRU blocks, dirty included.
                    view.rank >= min_rank
                } else {
                    // Threshold i: the i LRU-most blocks, clean only, never
                    // the MRU block.
                    view.rank >= min_rank
                        && u32::from(view.rank) >= u32::from(ways) - level as u32
                        && (!self.config.clean_first || !view.dirty)
                };
                if !condemned {
                    continue;
                }
                // On NVSRAM, a gated dirty block is parked in its
                // nonvolatile twin, not spilled to main memory (the sink
                // fires only for a dirty valid block).
                let parked = &mut out.parked;
                match cache.gate_with(view.block, |addr, data| parked.push(addr, data)) {
                    GateResult::GatedValid { addr, dirty } => {
                        if set == self.config.sample_set {
                            self.total_predicted += 1;
                            if self.buffer.len() == self.config.deactivation_buffer_entries {
                                self.buffer.pop_front();
                            }
                            self.buffer.push_back(addr);
                        }
                        out.gated.push(GatedBlock { addr, dirty });
                    }
                    GateResult::GatedInvalid | GateResult::AlreadyGated => {}
                }
            }
        }
    }
}

impl LeakagePredictor for Edbp {
    fn name(&self) -> &'static str {
        "edbp"
    }

    fn on_miss(&mut self, addr: u64) {
        // A request for an address we deactivated this cycle is a wrong kill
        // (the block was live). The buffer only holds sample-set addresses.
        if let Some(pos) = self.buffer.iter().position(|&a| a == addr) {
            self.buffer.remove(pos);
            self.wrong_kill += 1;
        }
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        voltage: Voltage,
        _cycle: u64,
        out: &mut TickOutcome,
    ) {
        let crossed = self.thresholds.iter().take_while(|&&t| voltage < t).count();
        while self.level < crossed {
            self.level += 1;
            let level = self.level;
            self.apply_level(cache, level, out);
        }
    }

    fn next_wakeup(&self) -> WakeHint {
        // tick() only acts when the voltage drops strictly below the next
        // un-crossed threshold (the ladder is descending, so `take_while`
        // cannot pass `crossed` beyond `level` before that). With every rung
        // crossed, EDBP is done for this power cycle.
        WakeHint {
            at_cycle: None,
            below_voltage: self.thresholds.get(self.level).copied(),
            every_cycle: false,
        }
    }

    fn on_reboot(&mut self, _cache: &Cache) {
        #[cfg(feature = "edbp-debug")]
        eprintln!(
            "edbp reboot: wrong_kill={} total={} fpr={:.3} thr0={:.3}",
            self.wrong_kill,
            self.total_predicted,
            if self.total_predicted > 0 {
                self.wrong_kill as f64 / self.total_predicted as f64
            } else {
                0.0
            },
            self.thresholds[0].as_volts()
        );
        // Section V-B1: the FPR is computed in the wake of the failure from
        // the checkpointed statistics, and the thresholds adapt.
        if self.total_predicted > 0 {
            self.fpr = self.wrong_kill as f64 / self.total_predicted as f64;
        }
        if self.total_predicted > 0 && self.fpr > self.config.reference_fpr {
            for (t, init) in self
                .thresholds
                .iter_mut()
                .zip(&self.config.initial_thresholds)
            {
                let lowered = *t - self.config.adjustment_step;
                *t = lowered.max(self.config.floor).min(*init);
            }
        } else {
            // Not over-killing: restore initial thresholds if lowered.
            // `clone_from` reuses the existing buffer (lengths always match),
            // keeping the reboot path allocation-free.
            self.thresholds.clone_from(&self.config.initial_thresholds);
        }
        self.wrong_kill = 0;
        self.total_predicted = 0;
        self.buffer.clear();
        self.level = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::{AccessKind, CacheConfig, CacheGeometry, ReplacementPolicy};

    fn volts(v: f64) -> Voltage {
        Voltage::from_volts(v)
    }

    fn cache_4way() -> Cache {
        Cache::new(CacheConfig::paper_dcache())
    }

    /// Fills the four ways of set 0 in order; returns their addresses
    /// ordered LRU → MRU.
    fn fill_set0(cache: &mut Cache, dirty_mask: [bool; 4]) -> [u64; 4] {
        let sets = u64::from(cache.sets());
        let block = u64::from(cache.block_bytes());
        let addrs = [0, 1, 2, 3].map(|i| i * sets * block); // all map to set 0
        for (i, &addr) in addrs.iter().enumerate() {
            let kind = if dirty_mask[i] {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            cache.lookup(addr, kind);
            cache.fill(addr, &[0u8; 16], dirty_mask[i]);
        }
        addrs
    }

    #[test]
    fn default_thresholds_are_descending_and_sized() {
        for ways in [1u8, 2, 4, 8, 16] {
            let cfg = EdbpConfig::for_ways(ways);
            let expect = if ways <= 1 { 1 } else { usize::from(ways) - 1 };
            assert_eq!(cfg.initial_thresholds.len(), expect, "ways={ways}");
            for pair in cfg.initial_thresholds.windows(2) {
                assert!(pair[0] > pair[1]);
            }
        }
    }

    #[test]
    fn dormant_above_all_thresholds() {
        let mut cache = cache_4way();
        fill_set0(&mut cache, [false; 4]);
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        let out = edbp.tick(&mut cache, volts(3.45), 0);
        assert!(out.gated.is_empty());
        assert_eq!(edbp.level(), 0);
    }

    #[test]
    fn first_threshold_gates_only_clean_lru() {
        let mut cache = cache_4way();
        // LRU block (first filled) clean; others clean too.
        let addrs = fill_set0(&mut cache, [false; 4]);
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        // Default ladder for 4-way: 3.30 / 3.27 / 3.24.
        let out = edbp.tick(&mut cache, volts(3.29), 0);
        assert_eq!(edbp.level(), 1);
        // Only the LRU block of each set is condemned; set 0 has 4 valid
        // blocks, others are invalid.
        assert_eq!(out.gated.len(), 1);
        assert_eq!(out.gated[0].addr, addrs[0]);
        assert!(cache.contains(addrs[3]).is_some(), "MRU survives");
    }

    #[test]
    fn intermediate_thresholds_skip_dirty_blocks() {
        let mut cache = cache_4way();
        // LRU block dirty: levels 1..n-2 must not kill it.
        let addrs = fill_set0(&mut cache, [true, false, false, false]);
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        let out = edbp.tick(&mut cache, volts(3.28), 0); // level 1 only
        assert_eq!(edbp.level(), 1);
        assert!(out.gated.is_empty(), "dirty LRU spared at level 1");
        assert!(cache.contains(addrs[0]).is_some());
    }

    #[test]
    fn lowest_threshold_gates_all_non_mru_even_dirty() {
        let mut cache = cache_4way();
        let addrs = fill_set0(&mut cache, [true, true, false, false]);
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        let out = edbp.tick(&mut cache, volts(3.23), 0); // below all three
        assert_eq!(edbp.level(), 3);
        assert_eq!(out.gated.len(), 3, "three non-MRU blocks gated");
        assert_eq!(out.parked.len(), 2, "both dirty blocks parked in NV twins");
        assert!(
            out.writebacks.is_empty(),
            "EDBP never spills to main memory"
        );
        assert!(cache.contains(addrs[3]).is_some(), "MRU always survives");
    }

    #[test]
    fn levels_ratchet_and_do_not_repeat() {
        let mut cache = cache_4way();
        fill_set0(&mut cache, [false; 4]);
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        let first = edbp.tick(&mut cache, volts(3.29), 0);
        assert_eq!(first.gated.len(), 1);
        // Same voltage again: nothing new.
        let again = edbp.tick(&mut cache, volts(3.29), 1);
        assert!(again.gated.is_empty());
        // Voltage recovers: EDBP does not un-gate or re-gate.
        let up = edbp.tick(&mut cache, volts(3.45), 2);
        assert!(up.gated.is_empty());
        assert_eq!(edbp.level(), 1, "level only ratchets within a cycle");
    }

    #[test]
    fn direct_mapped_single_threshold_kills_everything() {
        let g = CacheGeometry::new(256, 1, 16).expect("valid");
        let mut cache = Cache::new(CacheConfig {
            geometry: g,
            policy: ReplacementPolicy::Lru,
        });
        for i in 0..4u64 {
            let addr = i * 16;
            cache.lookup(addr, AccessKind::Read);
            cache.fill(addr, &[0u8; 16], false);
        }
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        assert_eq!(edbp.thresholds().len(), 1);
        let out = edbp.tick(&mut cache, volts(3.2), 0);
        assert_eq!(out.gated.len(), 4, "direct-mapped EDBP spares nothing");
    }

    #[test]
    fn sampling_tracks_wrong_kills_and_adapts_down() {
        let mut cache = cache_4way();
        let mut cfg = EdbpConfig::for_cache(&cache);
        cfg.sample_set = 0;
        let addrs = fill_set0(&mut cache, [false; 4]);
        let mut edbp = Edbp::new(cfg);
        let initial = edbp.thresholds().to_vec();

        // Cross everything: 3 sample-set blocks gated.
        edbp.tick(&mut cache, volts(3.2), 0);
        // The program re-requests two of them before the outage: wrong kills.
        edbp.on_miss(addrs[0]);
        edbp.on_miss(addrs[1]);
        cache.power_fail();
        edbp.on_reboot(&cache);

        assert!((edbp.false_positive_rate() - 2.0 / 3.0).abs() < 1e-12);
        for (now, init) in edbp.thresholds().iter().zip(&initial) {
            let dropped = init.as_milli_volts() - now.as_milli_volts();
            let clamped = (now.as_milli_volts() - 3200.0).abs() < 1e-9;
            assert!(
                (dropped - 50.0).abs() < 1e-9 || (clamped && dropped > 0.0),
                "thresholds must drop by 50 mV or clamp at the floor (dropped {dropped} mV)"
            );
        }
    }

    #[test]
    fn low_fpr_resets_thresholds_to_initial() {
        let mut cache = cache_4way();
        let mut cfg = EdbpConfig::for_cache(&cache);
        cfg.sample_set = 0;
        fill_set0(&mut cache, [false; 4]);
        let mut edbp = Edbp::new(cfg);
        let initial = edbp.thresholds().to_vec();

        // Cycle 1: heavy wrong kills → lowered.
        edbp.tick(&mut cache, volts(3.2), 0);
        for v in cache.set_view(0) {
            let _ = v;
        }
        edbp.on_miss(0); // addrs[0] == 0
        cache.power_fail();
        edbp.on_reboot(&cache);
        assert!(edbp.thresholds()[0] < initial[0]);

        // Cycle 2: no kills at all → reset to initial.
        cache.power_fail();
        edbp.on_reboot(&cache);
        assert_eq!(edbp.thresholds(), initial.as_slice());
    }

    #[test]
    fn thresholds_never_cross_the_floor() {
        let mut cache = cache_4way();
        let mut cfg = EdbpConfig::for_cache(&cache);
        cfg.sample_set = 0;
        let mut edbp = Edbp::new(cfg.clone());
        // Ten hostile cycles: always 100% FPR.
        for _ in 0..10 {
            let addrs = fill_set0(&mut cache, [false; 4]);
            edbp.tick(&mut cache, volts(3.2), 0);
            for a in addrs {
                edbp.on_miss(a);
            }
            cache.power_fail();
            edbp.on_reboot(&cache);
        }
        for t in edbp.thresholds() {
            assert!(*t >= cfg.floor, "threshold {t} below floor {}", cfg.floor);
        }
    }

    #[test]
    fn deactivation_buffer_is_bounded() {
        let mut cache = cache_4way();
        let mut cfg = EdbpConfig::for_cache(&cache);
        cfg.sample_set = 0;
        cfg.deactivation_buffer_entries = 2;
        let mut edbp = Edbp::new(cfg);
        fill_set0(&mut cache, [false; 4]);
        edbp.tick(&mut cache, volts(3.2), 0); // gates 3 sample-set blocks
        assert!(edbp.buffer.len() <= 2, "buffer must evict oldest entries");
    }

    #[test]
    fn reboot_rearms_levels() {
        let mut cache = cache_4way();
        fill_set0(&mut cache, [false; 4]);
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        edbp.tick(&mut cache, volts(3.2), 0);
        assert_eq!(edbp.level(), 3);
        cache.power_fail();
        edbp.on_reboot(&cache);
        assert_eq!(edbp.level(), 0);
        // Next cycle it can fire again.
        fill_set0(&mut cache, [false; 4]);
        let out = edbp.tick(&mut cache, volts(3.2), 0);
        assert!(!out.gated.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly descending")]
    fn rejects_unsorted_thresholds() {
        let mut cfg = EdbpConfig::for_ways(4);
        cfg.initial_thresholds = vec![volts(3.25), volts(3.30), volts(3.35)];
        let _ = Edbp::new(cfg);
    }
}
