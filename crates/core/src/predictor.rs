//! The predictor trait and composition utilities.

use ehs_cache::{BlockId, Cache, Writeback};
use ehs_units::Voltage;
use std::fmt;

/// A block a predictor just power-gated, as reported to the simulator (for
/// energy charging) and the [`crate::PredictionLedger`] (for accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatedBlock {
    /// Block-aligned address of the deactivated block.
    pub addr: u64,
    /// Whether it was dirty (and therefore written back first).
    pub dirty: bool,
}

/// Everything a predictor did during one [`LeakagePredictor::tick`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Valid blocks that were deactivated.
    pub gated: Vec<GatedBlock>,
    /// Dirty content to be written back to main memory (the conventional
    /// predictors' discipline; the simulator charges an NVM write for each).
    pub writebacks: Vec<Writeback>,
    /// Dirty content *parked* in its nonvolatile NVSRAM twin instead of
    /// written to memory (EDBP's discipline on an NVSRAM platform): the
    /// simulator charges an in-place save, recalls the block cheaply if it
    /// is re-referenced, and restores it at reboot like any checkpointed
    /// block. See `DESIGN.md` §5.
    pub parked: Vec<Writeback>,
}

impl TickOutcome {
    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: TickOutcome) {
        self.gated.extend(other.gated);
        self.writebacks.extend(other.writebacks);
        self.parked.extend(other.parked);
    }
}

/// A cache-leakage predictor: observes the access stream and periodically
/// power-gates frames it believes are dead (conventional predictors) or
/// zombie (EDBP).
///
/// The full-system simulator calls the `on_*` hooks as events happen and
/// [`LeakagePredictor::tick`] once per simulation step. Implementations must
/// be deterministic.
pub trait LeakagePredictor: fmt::Debug + Send {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// A lookup hit `addr` at `block`.
    fn on_hit(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        let _ = (cache, block, addr);
    }

    /// A lookup missed on `addr` (before the fill happens).
    fn on_miss(&mut self, addr: u64) {
        let _ = addr;
    }

    /// A block for `addr` was installed at `block`.
    fn on_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        let _ = (cache, block, addr);
    }

    /// A block for `addr` was restored from the checkpoint at reboot.
    /// Defaults to [`LeakagePredictor::on_fill`]; only predictors that key
    /// on fill origin (the oracle) need to distinguish.
    fn on_restore_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        self.on_fill(cache, block, addr);
    }

    /// A valid block for `addr` was evicted by a miss.
    fn on_evict(&mut self, addr: u64) {
        let _ = addr;
    }

    /// Periodic decision point: observe the voltage and cycle count, gate
    /// whatever should die. Called once per simulated step.
    fn tick(&mut self, cache: &mut Cache, voltage: Voltage, cycle: u64) -> TickOutcome;

    /// The JIT checkpoint is about to be taken (power failure imminent).
    fn on_checkpoint(&mut self, cache: &Cache) {
        let _ = cache;
    }

    /// The system rebooted after an outage (volatile state was lost).
    fn on_reboot(&mut self, cache: &Cache) {
        let _ = cache;
    }
}

/// The no-op predictor: the paper's baseline keeps every block powered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPredictor;

impl NullPredictor {
    /// Creates the no-op predictor.
    pub fn new() -> Self {
        Self
    }
}

impl LeakagePredictor for NullPredictor {
    fn name(&self) -> &'static str {
        "none"
    }

    fn tick(&mut self, _cache: &mut Cache, _voltage: Voltage, _cycle: u64) -> TickOutcome {
        TickOutcome::default()
    }
}

/// Runs several predictors side by side — the paper's headline configuration
/// is `CombinedPredictor` of Cache Decay and EDBP (Section VI).
///
/// Events fan out to every member; ticks run in registration order, so a
/// block gated by an earlier member is simply absent when later members look.
#[derive(Debug)]
pub struct CombinedPredictor {
    members: Vec<Box<dyn LeakagePredictor>>,
}

impl CombinedPredictor {
    /// Creates a combination of predictors.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn LeakagePredictor>>) -> Self {
        assert!(!members.is_empty(), "combination needs at least one member");
        Self { members }
    }

    /// Number of member predictors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false; construction rejects empty combinations.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl LeakagePredictor for CombinedPredictor {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn on_hit(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        for m in &mut self.members {
            m.on_hit(cache, block, addr);
        }
    }

    fn on_miss(&mut self, addr: u64) {
        for m in &mut self.members {
            m.on_miss(addr);
        }
    }

    fn on_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        for m in &mut self.members {
            m.on_fill(cache, block, addr);
        }
    }

    fn on_restore_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        for m in &mut self.members {
            m.on_restore_fill(cache, block, addr);
        }
    }

    fn on_evict(&mut self, addr: u64) {
        for m in &mut self.members {
            m.on_evict(addr);
        }
    }

    fn tick(&mut self, cache: &mut Cache, voltage: Voltage, cycle: u64) -> TickOutcome {
        let mut out = TickOutcome::default();
        for m in &mut self.members {
            out.absorb(m.tick(cache, voltage, cycle));
        }
        out
    }

    fn on_checkpoint(&mut self, cache: &Cache) {
        for m in &mut self.members {
            m.on_checkpoint(cache);
        }
    }

    fn on_reboot(&mut self, cache: &Cache) {
        for m in &mut self.members {
            m.on_reboot(cache);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::CacheConfig;

    #[test]
    fn null_predictor_never_gates() {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut p = NullPredictor::new();
        let out = p.tick(&mut cache, Voltage::from_volts(2.9), 123);
        assert!(out.gated.is_empty());
        assert!(out.writebacks.is_empty());
        assert_eq!(cache.gated_blocks(), 0);
    }

    #[test]
    fn combined_fans_out_ticks() {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut c = CombinedPredictor::new(vec![
            Box::new(NullPredictor::new()),
            Box::new(NullPredictor::new()),
        ]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        let out = c.tick(&mut cache, Voltage::from_volts(3.5), 0);
        assert_eq!(out, TickOutcome::default());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn combined_rejects_empty() {
        let _ = CombinedPredictor::new(vec![]);
    }

    #[test]
    fn tick_outcome_absorb_concatenates() {
        let mut a = TickOutcome {
            gated: vec![GatedBlock {
                addr: 0x10,
                dirty: false,
            }],
            writebacks: vec![],
            parked: vec![],
        };
        let b = TickOutcome {
            gated: vec![GatedBlock {
                addr: 0x20,
                dirty: true,
            }],
            parked: vec![],
            writebacks: vec![Writeback {
                addr: 0x20,
                data: vec![0; 16],
            }],
        };
        a.absorb(b);
        assert_eq!(a.gated.len(), 2);
        assert_eq!(a.writebacks.len(), 1);
    }
}
