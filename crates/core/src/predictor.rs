//! The predictor trait and composition utilities.

use ehs_cache::{BlockId, Cache};
use ehs_units::Voltage;
use std::fmt;

/// A block a predictor just power-gated, as reported to the simulator (for
/// energy charging) and the [`crate::PredictionLedger`] (for accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatedBlock {
    /// Block-aligned address of the deactivated block.
    pub addr: u64,
    /// Whether it was dirty (and therefore written back first).
    pub dirty: bool,
}

/// A flat, reusable list of dirty-block images: entry addresses in one
/// `Vec`, their bytes packed end-to-end in a single contiguous pool.
///
/// Replaces the old `Vec<Writeback>` (one heap allocation per entry for the
/// `data` vector). [`WritebackArena::clear`] keeps capacity, so a
/// simulation-owned scratch [`TickOutcome`] reaches its high-water size once
/// and every later tick appends without touching the allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WritebackArena {
    /// `(block address, end offset into bytes)` per entry; entry `i` spans
    /// `entries[i-1].1..entries[i].1` (from 0 for the first).
    entries: Vec<(u64, u32)>,
    bytes: Vec<u8>,
}

impl WritebackArena {
    /// Appends one block image.
    #[inline]
    pub fn push(&mut self, addr: u64, data: &[u8]) {
        self.bytes.extend_from_slice(data);
        self.entries.push((addr, self.bytes.len() as u32));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in push order as `(addr, block image)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> + '_ {
        self.entries.iter().enumerate().map(|(i, &(addr, end))| {
            let start = if i == 0 { 0 } else { self.entries[i - 1].1 } as usize;
            (addr, &self.bytes[start..end as usize])
        })
    }

    /// Removes every entry, keeping both pools' capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes.clear();
    }
}

/// Everything a predictor did during one [`LeakagePredictor::tick`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Valid blocks that were deactivated.
    pub gated: Vec<GatedBlock>,
    /// Dirty content to be written back to main memory (the conventional
    /// predictors' discipline; the simulator charges an NVM write for each).
    pub writebacks: WritebackArena,
    /// Dirty content *parked* in its nonvolatile NVSRAM twin instead of
    /// written to memory (EDBP's discipline on an NVSRAM platform): the
    /// simulator charges an in-place save, recalls the block cheaply if it
    /// is re-referenced, and restores it at reboot like any checkpointed
    /// block. See `DESIGN.md` §5.
    pub parked: WritebackArena,
}

impl TickOutcome {
    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: &TickOutcome) {
        self.gated.extend_from_slice(&other.gated);
        for (addr, data) in other.writebacks.iter() {
            self.writebacks.push(addr, data);
        }
        for (addr, data) in other.parked.iter() {
            self.parked.push(addr, data);
        }
    }

    /// Removes everything, keeping capacity (the reusable-scratch contract).
    pub fn clear(&mut self) {
        self.gated.clear();
        self.writebacks.clear();
        self.parked.clear();
    }

    /// Whether this tick changed any state the simulator must account for.
    pub fn is_empty(&self) -> bool {
        self.gated.is_empty() && self.writebacks.is_empty() && self.parked.is_empty()
    }
}

/// When a predictor next needs a [`LeakagePredictor::tick`] call, as reported
/// by [`LeakagePredictor::next_wakeup`].
///
/// The contract: from the predictor's *current* state, every `tick(cache, v,
/// cycle)` whose arguments satisfy **none** of the armed conditions must be a
/// state-preserving no-op with an empty [`TickOutcome`]. The simulator relies
/// on this to skip ticks entirely between events — correctness (bit-exact
/// results vs. ticking every cycle) rests on the hint being conservative.
/// Any `on_*` event may change the predictor's answer, so hints must be
/// re-queried after hooks fire, after an executed tick, and after a reboot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeHint {
    /// Tick once the cycle counter reaches this value (epoch boundary).
    pub at_cycle: Option<u64>,
    /// Tick once the voltage drops strictly below this value (threshold
    /// crossing; matches the strict `voltage < t` comparisons the voltage-
    /// guided predictors use).
    pub below_voltage: Option<Voltage>,
    /// The predictor cannot bound its next action: tick every cycle.
    pub every_cycle: bool,
}

impl WakeHint {
    /// No wakeup needed: every tick from the current state is a no-op.
    pub const NEVER: WakeHint = WakeHint {
        at_cycle: None,
        below_voltage: None,
        every_cycle: false,
    };

    /// The conservative default: tick at every cycle.
    pub const EVERY_CYCLE: WakeHint = WakeHint {
        at_cycle: None,
        below_voltage: None,
        every_cycle: true,
    };

    /// Combines two hints into one that wakes as soon as *either* would:
    /// the earlier cycle, the higher voltage threshold, and every-cycle if
    /// either demands it.
    #[must_use]
    pub fn merge(self, other: WakeHint) -> WakeHint {
        let at_cycle = match (self.at_cycle, other.at_cycle) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let below_voltage = match (self.below_voltage, other.below_voltage) {
            (Some(a), Some(b)) => Some(if a >= b { a } else { b }),
            (a, b) => a.or(b),
        };
        WakeHint {
            at_cycle,
            below_voltage,
            every_cycle: self.every_cycle || other.every_cycle,
        }
    }

    /// Whether a tick at `(cycle, voltage)` may act and must therefore run.
    pub fn due(&self, cycle: u64, voltage: Voltage) -> bool {
        self.every_cycle
            || self.at_cycle.is_some_and(|c| cycle >= c)
            || self.below_voltage.is_some_and(|w| voltage < w)
    }
}

/// A cache-leakage predictor: observes the access stream and periodically
/// power-gates frames it believes are dead (conventional predictors) or
/// zombie (EDBP).
///
/// The full-system simulator calls the `on_*` hooks as events happen and
/// [`LeakagePredictor::tick`] once per simulation step. Implementations must
/// be deterministic.
pub trait LeakagePredictor: fmt::Debug + Send {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// A lookup hit `addr` at `block`.
    fn on_hit(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        let _ = (cache, block, addr);
    }

    /// A lookup missed on `addr` (before the fill happens).
    fn on_miss(&mut self, addr: u64) {
        let _ = addr;
    }

    /// A block for `addr` was installed at `block`.
    fn on_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        let _ = (cache, block, addr);
    }

    /// A block for `addr` was restored from the checkpoint at reboot.
    /// Defaults to [`LeakagePredictor::on_fill`]; only predictors that key
    /// on fill origin (the oracle) need to distinguish.
    fn on_restore_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        self.on_fill(cache, block, addr);
    }

    /// A valid block for `addr` was evicted by a miss.
    fn on_evict(&mut self, addr: u64) {
        let _ = addr;
    }

    /// Periodic decision point: observe the voltage and cycle count, gate
    /// whatever should die, and *append* the outcome to `out` (which is not
    /// cleared — the caller owns the reusable scratch). Called once per
    /// simulated step.
    fn tick_into(&mut self, cache: &mut Cache, voltage: Voltage, cycle: u64, out: &mut TickOutcome);

    /// Allocating convenience wrapper over [`LeakagePredictor::tick_into`]
    /// returning a fresh [`TickOutcome`] (tests and cold paths).
    fn tick(&mut self, cache: &mut Cache, voltage: Voltage, cycle: u64) -> TickOutcome {
        let mut out = TickOutcome::default();
        self.tick_into(cache, voltage, cycle, &mut out);
        out
    }

    /// When this predictor next needs [`LeakagePredictor::tick`] called; see
    /// [`WakeHint`] for the no-op contract. The default is the conservative
    /// [`WakeHint::EVERY_CYCLE`], which keeps unknown implementations on the
    /// cycle-accurate path.
    fn next_wakeup(&self) -> WakeHint {
        WakeHint::EVERY_CYCLE
    }

    /// The JIT checkpoint is about to be taken (power failure imminent).
    fn on_checkpoint(&mut self, cache: &Cache) {
        let _ = cache;
    }

    /// The system rebooted after an outage (volatile state was lost).
    fn on_reboot(&mut self, cache: &Cache) {
        let _ = cache;
    }
}

/// Forwarding impl so a boxed predictor satisfies `P: LeakagePredictor`
/// bounds: generic (monomorphized) simulation code accepts the dynamic
/// flavour unchanged. Every method delegates, including the ones with
/// defaults — the inner implementation's overrides must win.
impl LeakagePredictor for Box<dyn LeakagePredictor> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_hit(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        (**self).on_hit(cache, block, addr);
    }

    fn on_miss(&mut self, addr: u64) {
        (**self).on_miss(addr);
    }

    fn on_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        (**self).on_fill(cache, block, addr);
    }

    fn on_restore_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        (**self).on_restore_fill(cache, block, addr);
    }

    fn on_evict(&mut self, addr: u64) {
        (**self).on_evict(addr);
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        voltage: Voltage,
        cycle: u64,
        out: &mut TickOutcome,
    ) {
        (**self).tick_into(cache, voltage, cycle, out);
    }

    fn next_wakeup(&self) -> WakeHint {
        (**self).next_wakeup()
    }

    fn on_checkpoint(&mut self, cache: &Cache) {
        (**self).on_checkpoint(cache);
    }

    fn on_reboot(&mut self, cache: &Cache) {
        (**self).on_reboot(cache);
    }
}

/// Two predictors running side by side with *static* dispatch — the
/// monomorphized counterpart of a two-member [`CombinedPredictor`]. Events
/// fan out `a` then `b` (registration order), identical to
/// `CombinedPredictor::new(vec![a, b])`, so results are bit-identical; the
/// member calls just inline instead of going through a vtable.
#[derive(Debug)]
pub struct Pair<A, B> {
    /// The first member (ticks first; blocks it gates are absent when `b`
    /// looks).
    pub a: A,
    /// The second member.
    pub b: B,
}

impl<A: LeakagePredictor, B: LeakagePredictor> Pair<A, B> {
    /// Combines two predictors, `a` before `b`.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: LeakagePredictor, B: LeakagePredictor> LeakagePredictor for Pair<A, B> {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn on_hit(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        self.a.on_hit(cache, block, addr);
        self.b.on_hit(cache, block, addr);
    }

    fn on_miss(&mut self, addr: u64) {
        self.a.on_miss(addr);
        self.b.on_miss(addr);
    }

    fn on_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        self.a.on_fill(cache, block, addr);
        self.b.on_fill(cache, block, addr);
    }

    fn on_restore_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        self.a.on_restore_fill(cache, block, addr);
        self.b.on_restore_fill(cache, block, addr);
    }

    fn on_evict(&mut self, addr: u64) {
        self.a.on_evict(addr);
        self.b.on_evict(addr);
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        voltage: Voltage,
        cycle: u64,
        out: &mut TickOutcome,
    ) {
        self.a.tick_into(cache, voltage, cycle, out);
        self.b.tick_into(cache, voltage, cycle, out);
    }

    fn next_wakeup(&self) -> WakeHint {
        self.a.next_wakeup().merge(self.b.next_wakeup())
    }

    fn on_checkpoint(&mut self, cache: &Cache) {
        self.a.on_checkpoint(cache);
        self.b.on_checkpoint(cache);
    }

    fn on_reboot(&mut self, cache: &Cache) {
        self.a.on_reboot(cache);
        self.b.on_reboot(cache);
    }
}

/// The no-op predictor: the paper's baseline keeps every block powered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPredictor;

impl NullPredictor {
    /// Creates the no-op predictor.
    pub fn new() -> Self {
        Self
    }
}

impl LeakagePredictor for NullPredictor {
    fn name(&self) -> &'static str {
        "none"
    }

    fn tick_into(
        &mut self,
        _cache: &mut Cache,
        _voltage: Voltage,
        _cycle: u64,
        _out: &mut TickOutcome,
    ) {
    }

    fn next_wakeup(&self) -> WakeHint {
        WakeHint::NEVER
    }
}

/// Runs several predictors side by side — the paper's headline configuration
/// is `CombinedPredictor` of Cache Decay and EDBP (Section VI).
///
/// Events fan out to every member; ticks run in registration order, so a
/// block gated by an earlier member is simply absent when later members look.
#[derive(Debug)]
pub struct CombinedPredictor {
    members: Vec<Box<dyn LeakagePredictor>>,
}

impl CombinedPredictor {
    /// Creates a combination of predictors.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn LeakagePredictor>>) -> Self {
        assert!(!members.is_empty(), "combination needs at least one member");
        Self { members }
    }

    /// Number of member predictors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false; construction rejects empty combinations.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl LeakagePredictor for CombinedPredictor {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn on_hit(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        for m in &mut self.members {
            m.on_hit(cache, block, addr);
        }
    }

    fn on_miss(&mut self, addr: u64) {
        for m in &mut self.members {
            m.on_miss(addr);
        }
    }

    fn on_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        for m in &mut self.members {
            m.on_fill(cache, block, addr);
        }
    }

    fn on_restore_fill(&mut self, cache: &Cache, block: BlockId, addr: u64) {
        for m in &mut self.members {
            m.on_restore_fill(cache, block, addr);
        }
    }

    fn on_evict(&mut self, addr: u64) {
        for m in &mut self.members {
            m.on_evict(addr);
        }
    }

    fn tick_into(
        &mut self,
        cache: &mut Cache,
        voltage: Voltage,
        cycle: u64,
        out: &mut TickOutcome,
    ) {
        for m in &mut self.members {
            m.tick_into(cache, voltage, cycle, out);
        }
    }

    fn next_wakeup(&self) -> WakeHint {
        self.members
            .iter()
            .fold(WakeHint::NEVER, |h, m| h.merge(m.next_wakeup()))
    }

    fn on_checkpoint(&mut self, cache: &Cache) {
        for m in &mut self.members {
            m.on_checkpoint(cache);
        }
    }

    fn on_reboot(&mut self, cache: &Cache) {
        for m in &mut self.members {
            m.on_reboot(cache);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::CacheConfig;

    #[test]
    fn null_predictor_never_gates() {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut p = NullPredictor::new();
        let out = p.tick(&mut cache, Voltage::from_volts(2.9), 123);
        assert!(out.gated.is_empty());
        assert!(out.writebacks.is_empty());
        assert_eq!(cache.gated_blocks(), 0);
    }

    #[test]
    fn combined_fans_out_ticks() {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut c = CombinedPredictor::new(vec![
            Box::new(NullPredictor::new()),
            Box::new(NullPredictor::new()),
        ]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        let out = c.tick(&mut cache, Voltage::from_volts(3.5), 0);
        assert_eq!(out, TickOutcome::default());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn combined_rejects_empty() {
        let _ = CombinedPredictor::new(vec![]);
    }

    #[test]
    fn wake_hint_merge_takes_the_earliest_wakeup() {
        let decay_like = WakeHint {
            at_cycle: Some(4096),
            below_voltage: None,
            every_cycle: false,
        };
        let edbp_like = WakeHint {
            at_cycle: None,
            below_voltage: Some(Voltage::from_volts(3.27)),
            every_cycle: false,
        };
        let merged = decay_like.merge(edbp_like);
        assert_eq!(merged.at_cycle, Some(4096));
        assert_eq!(merged.below_voltage, Some(Voltage::from_volts(3.27)));
        assert!(!merged.every_cycle);
        // Cycle pick: earlier wins. Voltage pick: higher wins (wakes first
        // on a falling rail).
        let other = WakeHint {
            at_cycle: Some(100),
            below_voltage: Some(Voltage::from_volts(3.30)),
            every_cycle: false,
        };
        let m2 = merged.merge(other);
        assert_eq!(m2.at_cycle, Some(100));
        assert_eq!(m2.below_voltage, Some(Voltage::from_volts(3.30)));
        // EVERY_CYCLE is absorbing.
        assert!(m2.merge(WakeHint::EVERY_CYCLE).every_cycle);
        // NEVER is the identity.
        assert_eq!(m2.merge(WakeHint::NEVER), m2);
    }

    #[test]
    fn wake_hint_due_semantics() {
        let h = WakeHint {
            at_cycle: Some(1000),
            below_voltage: Some(Voltage::from_volts(3.2)),
            every_cycle: false,
        };
        let v_hi = Voltage::from_volts(3.4);
        let v_lo = Voltage::from_volts(3.1);
        assert!(!h.due(999, v_hi));
        assert!(h.due(1000, v_hi), "cycle boundary is inclusive");
        assert!(h.due(0, v_lo), "strictly below the voltage threshold");
        assert!(!h.due(0, Voltage::from_volts(3.2)), "equality is not below");
        assert!(!WakeHint::NEVER.due(u64::MAX, Voltage::from_volts(0.0)));
        assert!(WakeHint::EVERY_CYCLE.due(0, v_hi));
    }

    #[test]
    fn combined_wakeup_merges_members() {
        let cache = Cache::new(CacheConfig::paper_dcache());
        let decay = crate::CacheDecay::new(
            crate::DecayConfig {
                decay_interval_cycles: 4096,
            },
            &cache,
        );
        let edbp = crate::Edbp::new(crate::EdbpConfig::for_cache(&cache));
        let edbp_first = edbp.next_wakeup().below_voltage.expect("armed");
        let c = CombinedPredictor::new(vec![Box::new(decay), Box::new(edbp)]);
        let hint = c.next_wakeup();
        assert_eq!(hint.at_cycle, Some(1024), "decay period = interval/4");
        assert_eq!(hint.below_voltage, Some(edbp_first));
        assert!(!hint.every_cycle);
    }

    #[test]
    fn null_predictor_never_wakes() {
        assert_eq!(NullPredictor::new().next_wakeup(), WakeHint::NEVER);
    }

    #[test]
    fn tick_outcome_absorb_concatenates() {
        let mut a = TickOutcome::default();
        a.gated.push(GatedBlock {
            addr: 0x10,
            dirty: false,
        });
        let mut b = TickOutcome::default();
        b.gated.push(GatedBlock {
            addr: 0x20,
            dirty: true,
        });
        b.writebacks.push(0x20, &[7u8; 16]);
        a.absorb(&b);
        assert_eq!(a.gated.len(), 2);
        assert_eq!(a.writebacks.len(), 1);
        let (addr, data) = a.writebacks.iter().next().expect("one entry");
        assert_eq!(addr, 0x20);
        assert_eq!(data, &[7u8; 16]);
    }

    #[test]
    fn writeback_arena_round_trips_entries() {
        let mut arena = WritebackArena::default();
        assert!(arena.is_empty());
        arena.push(0x40, &[1u8; 4]);
        arena.push(0x80, &[2u8; 8]);
        let got: Vec<(u64, Vec<u8>)> = arena.iter().map(|(a, d)| (a, d.to_vec())).collect();
        assert_eq!(got, vec![(0x40, vec![1u8; 4]), (0x80, vec![2u8; 8])]);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.iter().count(), 0);
    }
}
