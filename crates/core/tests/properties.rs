//! Property tests for the predictors and the zombie-aware accounting.

use edbp_core::{
    CacheDecay, DecayConfig, Edbp, EdbpConfig, LeakagePredictor, PredictionLedger,
    PredictionSummary,
};
use ehs_cache::{AccessKind, Cache, CacheConfig};
use ehs_units::Voltage;
use proptest::prelude::*;

/// Random ledger event streams must keep the summary internally consistent.
#[derive(Debug, Clone)]
enum LedgerOp {
    Fill(u64),
    Hit(u64),
    Miss(u64),
    Gate(u64),
    Evict(u64),
    PowerFail,
    Restore(u64),
}

fn ledger_op() -> impl Strategy<Value = LedgerOp> {
    let addr = (0u64..16).prop_map(|a| a * 16);
    prop_oneof![
        4 => addr.clone().prop_map(LedgerOp::Fill),
        4 => addr.clone().prop_map(LedgerOp::Hit),
        2 => addr.clone().prop_map(LedgerOp::Miss),
        2 => addr.clone().prop_map(LedgerOp::Gate),
        2 => addr.clone().prop_map(LedgerOp::Evict),
        1 => Just(LedgerOp::PowerFail),
        1 => addr.prop_map(LedgerOp::Restore),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ledger_counts_are_monotone_and_rates_bounded(
        ops in proptest::collection::vec(ledger_op(), 1..300)
    ) {
        let mut ledger = PredictionLedger::new();
        let mut prev = PredictionSummary::default();
        for op in ops {
            match op {
                LedgerOp::Fill(a) => ledger.on_fill(a),
                LedgerOp::Hit(a) => ledger.on_hit(a),
                LedgerOp::Miss(a) => ledger.on_miss(a),
                LedgerOp::Gate(a) => ledger.on_gate(a),
                LedgerOp::Evict(a) => ledger.on_evict(a),
                LedgerOp::PowerFail => ledger.on_power_fail(),
                LedgerOp::Restore(a) => ledger.on_restore(a),
            }
            let s = ledger.summary();
            // Counters never decrease.
            prop_assert!(s.true_positives >= prev.true_positives);
            prop_assert!(s.false_positives >= prev.false_positives);
            prop_assert!(s.true_negatives >= prev.true_negatives);
            prop_assert!(s.false_negatives_dead >= prev.false_negatives_dead);
            prop_assert!(s.missed_zombies >= prev.missed_zombies);
            // Rates stay in [0, 1]; fractions sum to 1 when nonempty.
            prop_assert!((0.0..=1.0).contains(&s.coverage()));
            prop_assert!((0.0..=1.0).contains(&s.accuracy()));
            if s.total() > 0 {
                let sum: f64 = s.fractions().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }
            prev = s;
        }
    }

    #[test]
    fn edbp_threshold_count_tracks_voltage_monotonically(
        millivolts in proptest::collection::vec(3150u32..3500, 1..100)
    ) {
        // Feeding a decreasing voltage sequence must never lower the level.
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        let mut sorted = millivolts;
        sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending voltage
        let mut last_level = 0;
        for mv in sorted {
            let v = Voltage::from_milli_volts(f64::from(mv));
            let _ = edbp.tick(&mut cache, v, 0);
            prop_assert!(edbp.level() >= last_level, "level must ratchet");
            prop_assert!(edbp.level() <= edbp.thresholds().len());
            last_level = edbp.level();
        }
    }

    #[test]
    fn edbp_never_gates_the_mru_block(
        fills in proptest::collection::vec(0u64..8, 4..40),
        mv in 3150u32..3500,
    ) {
        // Whatever was touched last in each set must survive any single tick.
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
        let mut last_in_set0 = None;
        for slot in fills {
            let addr = slot * 0x400; // all map to set 0
            if !cache.lookup(addr, AccessKind::Read).is_hit() {
                cache.fill(addr, &[0u8; 16], false);
            }
            last_in_set0 = Some(addr);
        }
        let _ = edbp.tick(&mut cache, Voltage::from_milli_volts(f64::from(mv)), 0);
        prop_assert!(
            cache.contains(last_in_set0.expect("filled at least once")).is_some(),
            "MRU block was gated"
        );
    }

    #[test]
    fn edbp_thresholds_stay_ordered_and_floored_across_cycles(
        fprs in proptest::collection::vec(any::<bool>(), 1..30)
    ) {
        // Any history of hostile/benign power cycles keeps the ladder sane.
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut cfg = EdbpConfig::for_cache(&cache);
        cfg.sample_set = 0;
        let floor = cfg.floor;
        let mut edbp = Edbp::new(cfg);
        for hostile in fprs {
            // Fill set 0 and cross all thresholds.
            for i in 0..4u64 {
                let addr = i * 0x400;
                if !cache.lookup(addr, AccessKind::Read).is_hit() {
                    cache.fill(addr, &[0u8; 16], false);
                }
            }
            let _ = edbp.tick(&mut cache, Voltage::from_volts(3.19), 0);
            if hostile {
                for i in 0..4u64 {
                    edbp.on_miss(i * 0x400);
                }
            }
            cache.power_fail();
            edbp.on_reboot(&cache);
            for pair in edbp.thresholds().windows(2) {
                // Clamping at the floor may flatten the bottom of the
                // ladder; above the floor it stays strictly descending.
                prop_assert!(pair[0] >= pair[1], "ladder must stay ordered");
                if pair[1] > floor {
                    prop_assert!(pair[0] > pair[1], "ladder must descend above the floor");
                }
            }
            prop_assert!(*edbp.thresholds().last().expect("non-empty") >= floor);
        }
    }

    #[test]
    fn decay_gates_are_idle_blocks_only(
        touched in proptest::collection::vec(0u64..16, 1..50)
    ) {
        // Blocks accessed within the last global tick are never gated by the
        // immediately following tick.
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        let mut decay = CacheDecay::new(
            DecayConfig { decay_interval_cycles: 4096 },
            &cache,
        );
        let v = Voltage::from_volts(3.5);
        // Age everything to the brink.
        let _ = decay.tick(&mut cache, v, 3 * 1024);
        // Touch a subset.
        let mut touched_addrs = Vec::new();
        for slot in touched {
            let addr = slot * 16;
            match cache.lookup(addr, AccessKind::Read) {
                ehs_cache::LookupOutcome::Hit(h) => decay.on_hit(&cache, h.block, addr),
                ehs_cache::LookupOutcome::Miss(_) => {
                    let id = cache.fill(addr, &[0u8; 16], false);
                    decay.on_fill(&cache, id, addr);
                }
            }
            touched_addrs.push(addr);
        }
        let out = decay.tick(&mut cache, v, 4 * 1024);
        for g in &out.gated {
            prop_assert!(
                !touched_addrs.contains(&g.addr),
                "freshly touched block {:#x} was gated",
                g.addr
            );
        }
    }
}
