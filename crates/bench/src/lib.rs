//! Shared helpers for the Criterion benchmark harness.
//!
//! Each benchmark in `benches/figures.rs` exercises the exact configuration
//! of one table/figure of the paper on a reduced workload set, so regressions
//! in any experiment's hot path are caught without re-running the full
//! evaluation (the `exp_*` binaries in `ehs-sim` regenerate the complete
//! tables — see `EXPERIMENTS.md`).

use ehs_sim::{run_app, RunResult, Scheme, SystemConfig};
use ehs_workloads::{AppId, Scale};

/// The small representative app subset the benches run (one cache-resident
/// streaming app, one thrashing pointer-chaser, one large-code media app).
pub const BENCH_APPS: [AppId; 3] = [AppId::Crc32, AppId::Patricia, AppId::JpegEnc];

/// Runs the given scheme over the bench apps at Tiny scale and folds the
/// results into a checksum (so the optimizer cannot elide the simulation).
pub fn run_bench_apps(config: &SystemConfig, scheme: Scheme) -> u64 {
    BENCH_APPS
        .iter()
        .map(|&app| checksum(&run_app(config, scheme, app, Scale::Tiny)))
        .fold(0, u64::wrapping_add)
}

/// A cheap stable digest of a run result.
pub fn checksum(r: &RunResult) -> u64 {
    r.committed
        .wrapping_mul(31)
        .wrapping_add(r.outages)
        .wrapping_add(r.dcache.misses)
        .wrapping_add(r.prediction.true_positives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_sim::SystemConfig;

    #[test]
    fn bench_helper_is_deterministic() {
        let config = SystemConfig::paper_default();
        assert_eq!(
            run_bench_apps(&config, Scheme::Edbp),
            run_bench_apps(&config, Scheme::Edbp)
        );
    }
}
