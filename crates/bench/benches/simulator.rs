//! Micro-benchmarks of the simulator's hot paths: cache lookups, predictor
//! ticks, trace sampling, and end-to-end instruction throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edbp_core::{Edbp, EdbpConfig, LeakagePredictor};
use ehs_cache::{AccessKind, Cache, CacheConfig};
use ehs_energy::{EnergySource, SourceConfig, TracePreset};
use ehs_sim::{run_app, Scheme, SystemConfig};
use ehs_units::{Time, Voltage};
use ehs_workloads::{AppId, Scale};
use std::hint::black_box;

fn cache_hot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("hit_loop_1k", |b| {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        for i in 0..256u64 {
            cache.lookup(i * 16, AccessKind::Read);
            cache.fill(i * 16, &[0u8; 16], false);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let addr = (i % 256) * 16;
                acc += u64::from(cache.lookup(black_box(addr), AccessKind::Read).is_hit());
            }
            acc
        })
    });
    group.finish();
}

fn edbp_tick(c: &mut Criterion) {
    c.bench_function("edbp/full_sweep_tick", |b| {
        b.iter_batched(
            || {
                let mut cache = Cache::new(CacheConfig::paper_dcache());
                for i in 0..256u64 {
                    cache.lookup(i * 16, AccessKind::Read);
                    cache.fill(i * 16, &[0u8; 16], false);
                }
                let edbp = Edbp::new(EdbpConfig::for_cache(&cache));
                (cache, edbp)
            },
            |(mut cache, mut edbp)| {
                black_box(edbp.tick(&mut cache, Voltage::from_volts(3.2), 0))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn trace_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("rfhome_power_at_10k", |b| {
        let trace = SourceConfig::preset(TracePreset::RfHome).with_seed(7).build();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000u64 {
                acc += trace
                    .power_at(Time::from_micros(17.0) * i as f64)
                    .as_watts();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn end_to_end_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    // crc32 Tiny commits ~90k instructions.
    group.throughput(Throughput::Elements(90_000));
    for scheme in [Scheme::Baseline, Scheme::DecayEdbp] {
        group.bench_function(scheme.name(), |b| {
            let config = SystemConfig::paper_default();
            b.iter(|| black_box(run_app(&config, scheme, AppId::Crc32, Scale::Tiny)))
        });
    }
    group.finish();
}

criterion_group!(
    simulator,
    cache_hot_loop,
    edbp_tick,
    trace_sampling,
    end_to_end_throughput
);
criterion_main!(simulator);
