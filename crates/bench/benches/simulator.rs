//! Micro-benchmarks of the simulator's hot paths: cache lookups, predictor
//! ticks, trace sampling, and end-to-end instruction throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edbp_core::{Edbp, EdbpConfig, LeakagePredictor};
use ehs_cache::{AccessKind, Cache, CacheConfig};
use ehs_energy::{
    BurstPlan, ConstantSource, EnergySource, EnergySystem, EnergySystemConfig, SourceConfig,
    StepEvent, TracePreset,
};
use ehs_sim::{run_app, Scheme, SystemConfig};
use ehs_units::{Energy, Frequency, Power, Time, Voltage};
use ehs_workloads::{AppId, Scale};
use std::hint::black_box;

fn cache_hot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("hit_loop_1k", |b| {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        for i in 0..256u64 {
            cache.lookup(i * 16, AccessKind::Read);
            cache.fill(i * 16, &[0u8; 16], false);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let addr = (i % 256) * 16;
                acc += u64::from(cache.lookup(black_box(addr), AccessKind::Read).is_hit());
            }
            acc
        })
    });
    group.finish();
}

fn edbp_tick(c: &mut Criterion) {
    c.bench_function("edbp/full_sweep_tick", |b| {
        b.iter_batched(
            || {
                let mut cache = Cache::new(CacheConfig::paper_dcache());
                for i in 0..256u64 {
                    cache.lookup(i * 16, AccessKind::Read);
                    cache.fill(i * 16, &[0u8; 16], false);
                }
                let edbp = Edbp::new(EdbpConfig::for_cache(&cache));
                (cache, edbp)
            },
            |(mut cache, mut edbp)| black_box(edbp.tick(&mut cache, Voltage::from_volts(3.2), 0)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn trace_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("rfhome_power_at_10k", |b| {
        let trace = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(7)
            .build();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000u64 {
                acc += trace
                    .power_at(Time::from_micros(17.0) * i as f64)
                    .as_watts();
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The per-cycle / per-checkpoint cache walks, in their allocation-free
/// visitor form vs. the legacy `Vec` snapshots they replaced. The visitor
/// numbers are what the simulation loop actually pays.
fn cache_walks(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig::paper_dcache());
    for i in 0..256u64 {
        cache.lookup(
            i * 16,
            if i % 2 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        );
        cache.fill(i * 16, &[0u8; 16], i % 2 == 0);
    }
    let mut group = c.benchmark_group("cache_walk");
    group.throughput(Throughput::Elements(256));
    group.bench_function("resident_addrs_iter", |b| {
        b.iter(|| black_box(cache.resident_addrs_iter().sum::<u64>()))
    });
    group.bench_function("resident_addrs_vec", |b| {
        b.iter(|| black_box(cache.resident_addrs().len()))
    });
    group.bench_function("for_each_valid", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            cache.for_each_valid(|_, data, _| bytes += data.len());
            black_box(bytes)
        })
    });
    group.bench_function("valid_blocks_vec", |b| {
        b.iter(|| black_box(cache.valid_blocks().len()))
    });
    group.bench_function("for_each_dirty", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            cache.for_each_dirty(|_, data| bytes += data.len());
            black_box(bytes)
        })
    });
    group.finish();
}

/// The energy system's burst stepping (DESIGN.md §8) against the per-cycle
/// reference it replicates: the same 1024 simulated cycles either as 1024
/// `step` calls or as 256 four-cycle `step_burst` calls — four cycles being
/// the longest burst the 16 B fetch buffer admits. Both sides perform the
/// identical per-cycle capacitor arithmetic (that is the bit-exactness
/// contract), so this pair guards that `step_burst`'s early-exit checks add
/// no regression over plain `step`; the simulator's actual speedup comes
/// from the *caller* skipping its per-cycle leakage/predictor/breakdown
/// bookkeeping, which `end_to_end` below measures.
fn burst_stepping(c: &mut Criterion) {
    const CYCLES: u64 = 1024;
    let dt = Time::from_nanos(40.0);
    let load = Energy::from_pico_joules(200.0);
    let new_system = || {
        EnergySystem::new(
            EnergySystemConfig::paper_default(),
            ConstantSource::new(Power::from_milli_watts(10.0)),
        )
        .expect("paper default validates")
    };
    let mut group = c.benchmark_group("energy");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("step_1k_cycles", |b| {
        let mut sys = new_system();
        b.iter(|| {
            let mut last = StepEvent::Running;
            for _ in 0..CYCLES {
                last = sys.step(dt, load);
            }
            black_box(last)
        })
    });
    group.bench_function("step_burst_4x256", |b| {
        let mut sys = new_system();
        let plan = BurstPlan {
            max_cycles: 4,
            dt,
            load,
            frequency: Frequency::from_mega_hertz(25.0),
            wake_at_cycle: None,
            wake_below_voltage: None,
        };
        b.iter(|| {
            let mut overdraw = Energy::ZERO;
            let mut taken = 0u64;
            for _ in 0..CYCLES / plan.max_cycles {
                taken += sys.step_burst(&plan, &mut overdraw).0;
            }
            black_box((taken, overdraw))
        })
    });
    group.finish();
}

fn end_to_end_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    // crc32 Tiny commits ~90k instructions.
    group.throughput(Throughput::Elements(90_000));
    for scheme in [Scheme::Baseline, Scheme::DecayEdbp] {
        group.bench_function(scheme.name(), |b| {
            let config = SystemConfig::paper_default();
            b.iter(|| black_box(run_app(&config, scheme, AppId::Crc32, Scale::Tiny)))
        });
    }
    group.finish();
}

criterion_group!(
    simulator,
    cache_hot_loop,
    edbp_tick,
    trace_sampling,
    cache_walks,
    burst_stepping,
    end_to_end_throughput
);
criterion_main!(simulator);
