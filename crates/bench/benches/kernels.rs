//! Micro-benchmarks of the packed-state kernels introduced by the
//! branchless/allocation-free redesign: the nibble-packed replacement-rank
//! update, the paged shadow-table lookup (vs. the `FxHashMap` it replaced),
//! and the oracle predictor's arena-cursor generation advance.
//!
//! These isolate the per-access primitives that `end_to_end` in
//! `simulator.rs` pays millions of times per run; regressions here show up
//! before they wash out in whole-simulation noise.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edbp_core::{
    FxHashMap, LeakagePredictor, OraclePredictor, OracleRecorder, PagedTable, TickOutcome,
};
use ehs_cache::probe::{
    avx2_available, force_impl, probe, probe_portable, probe_scalar, ProbeImpl,
};
use ehs_cache::{AccessKind, BlockId, Cache, CacheConfig, ReplacementPolicy};
use ehs_sim::{
    build_lane, record_generation_trace, run_lane, run_lockstep_with, LockstepMode, Scheme,
    Simulation, SystemConfig,
};
use ehs_units::Voltage;
use ehs_workloads::{build, AppId, Scale};
use std::hint::black_box;

const BLOCK: u64 = 16;

/// The wide tag probe against its scalar reference, per associativity.
/// Every d-cache access pays exactly one of these; the portable path is
/// written to autovectorize, the AVX2 path is explicit `core::arch` behind
/// runtime detection. The mix alternates hits and misses so the comparison
/// outcome is not branch-predictable into irrelevance.
fn tag_probe(c: &mut Criterion) {
    const PROBES: u64 = 1024;
    let mut group = c.benchmark_group("tag_probe");
    group.throughput(Throughput::Elements(PROBES));
    for ways in [1usize, 2, 4, 8, 16] {
        let tags: Vec<u64> = (0..ways as u64).map(|w| 0x1000 + w).collect();
        // Cycles through every way plus one guaranteed miss.
        let needle = |i: u64| 0x1000 + i % (ways as u64 + 1);
        group.bench_function(&format!("scalar_w{ways}"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..PROBES {
                    acc ^= probe_scalar(black_box(&tags), black_box(needle(i)));
                }
                acc
            })
        });
        group.bench_function(&format!("portable_w{ways}"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..PROBES {
                    acc ^= probe_portable(black_box(&tags), black_box(needle(i)));
                }
                acc
            })
        });
        if avx2_available() {
            force_impl(Some(ProbeImpl::Avx2));
            group.bench_function(&format!("avx2_w{ways}"), |b| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for i in 0..PROBES {
                        acc ^= probe(black_box(&tags), black_box(needle(i)));
                    }
                    acc
                })
            });
            force_impl(None);
        }
    }
    group.finish();
}

/// The per-hit replacement-rank update. Every policy keeps its per-set rank
/// state in one packed `u64` word (4-bit lane per way), so a hit's
/// promotion is a handful of shifts and masks; this measures that update
/// across the three policies on an all-resident set stream.
fn policy_rank_update(c: &mut Criterion) {
    const HITS: u64 = 1024;
    let mut group = c.benchmark_group("policy_update");
    group.throughput(Throughput::Elements(HITS));
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Fifo,
    ] {
        group.bench_function(policy.name(), |b| {
            let mut cache = Cache::new(CacheConfig::paper_dcache().with_policy(policy));
            for i in 0..256u64 {
                cache.lookup(i * BLOCK, AccessKind::Read);
                cache.fill(i * BLOCK, &[0u8; BLOCK as usize], false);
            }
            b.iter(|| {
                let mut hits = 0u64;
                for i in 0..HITS {
                    // Stride of 7 blocks keeps consecutive hits off the MRU
                    // way, so every lookup actually rewrites the rank word.
                    let addr = (i * 7 % 256) * BLOCK;
                    hits += u64::from(cache.lookup(black_box(addr), AccessKind::Read).is_hit());
                }
                hits
            })
        });
    }
    group.finish();
}

/// The shadow-table primitive behind the prediction ledger, reuse flags,
/// parked set, AMC and zombie bookkeeping: a two-level paged direct-index
/// table, benchmarked against the `FxHashMap` it replaced, on the same
/// block-aligned resident-set stream (4096 blocks, strided probes).
fn shadow_table_lookup(c: &mut Criterion) {
    const RESIDENT: u64 = 4096;
    const PROBES: u64 = 1024;
    let probe_addr = |i: u64| (i * 31 % RESIDENT) * BLOCK;

    let mut group = c.benchmark_group("shadow_table");
    group.throughput(Throughput::Elements(PROBES));

    group.bench_function("paged_get_1k", |b| {
        let mut table: PagedTable<u32> = PagedTable::for_block_bytes(BLOCK as u32);
        for i in 0..RESIDENT {
            table.insert(i * BLOCK, i as u32);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..PROBES {
                acc += table.get(black_box(probe_addr(i))).copied().unwrap_or(0) as u64;
            }
            acc
        })
    });
    group.bench_function("fxhash_get_1k", |b| {
        let mut table: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..RESIDENT {
            table.insert(i * BLOCK, i as u32);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..PROBES {
                acc += table.get(&black_box(probe_addr(i))).copied().unwrap_or(0) as u64;
            }
            acc
        })
    });

    group.bench_function("paged_insert_remove_1k", |b| {
        let mut table: PagedTable<u32> = PagedTable::for_block_bytes(BLOCK as u32);
        for i in 0..RESIDENT {
            table.insert(i * BLOCK, i as u32);
        }
        b.iter(|| {
            for i in 0..PROBES {
                let addr = probe_addr(i);
                table.remove(addr);
                table.insert(addr, i as u32);
            }
            table.len()
        })
    });
    group.bench_function("paged_remove_batch_1k", |b| {
        // The batch cursor on its target shape: an ascending block-aligned
        // drain (resident-set walks, tick gate lists) resolves each
        // 1024-slot page once instead of per address.
        let mut table: PagedTable<u32> = PagedTable::for_block_bytes(BLOCK as u32);
        b.iter(|| {
            table.fill_batch((0..PROBES).map(|i| i * BLOCK), 1);
            let mut drained = 0u64;
            table.remove_batch((0..PROBES).map(|i| i * BLOCK), |_, _| drained += 1);
            drained
        })
    });
    group.bench_function("paged_remove_scalar_1k", |b| {
        let mut table: PagedTable<u32> = PagedTable::for_block_bytes(BLOCK as u32);
        b.iter(|| {
            for i in 0..PROBES {
                table.insert(i * BLOCK, 1);
            }
            let mut drained = 0u64;
            for i in 0..PROBES {
                drained += u64::from(table.remove(i * BLOCK).is_some());
            }
            drained
        })
    });
    group.bench_function("fxhash_insert_remove_1k", |b| {
        let mut table: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..RESIDENT {
            table.insert(i * BLOCK, i as u32);
        }
        b.iter(|| {
            for i in 0..PROBES {
                let addr = probe_addr(i);
                table.remove(&addr);
                table.insert(addr, i as u32);
            }
            table.len()
        })
    });
    group.finish();
}

/// The oracle's replay path: each fill advances a per-address `(next, end)`
/// cursor into the flattened generation arena, each access decrements the
/// live budget, each eviction retires the generation. One iteration replays
/// 512 addresses x 4 generations x 3 accesses against a cloned predictor,
/// then drains the kill queue through a `tick`.
fn oracle_generation_advance(c: &mut Criterion) {
    const ADDRS: u64 = 512;
    const GENS: usize = 4;

    let mut rec = OracleRecorder::new();
    for _ in 0..GENS {
        for a in 0..ADDRS {
            let addr = a * BLOCK;
            rec.on_fill(addr);
            rec.on_hit(addr);
            rec.on_hit(addr);
            rec.on_evict(addr);
        }
    }
    let oracle = OraclePredictor::new(rec.finish());
    let dummy = BlockId { set: 0, way: 0 };

    let mut group = c.benchmark_group("oracle");
    group.throughput(Throughput::Elements(ADDRS * GENS as u64));
    group.bench_function("generation_advance_2k", |b| {
        let cache = Cache::new(CacheConfig::paper_dcache());
        let mut scratch = Cache::new(CacheConfig::paper_dcache());
        let mut out = TickOutcome::default();
        b.iter_batched(
            || oracle.clone(),
            |mut o| {
                for _ in 0..GENS {
                    for a in 0..ADDRS {
                        let addr = a * BLOCK;
                        o.on_fill(&cache, dummy, black_box(addr));
                        o.on_hit(&cache, dummy, addr);
                        o.on_hit(&cache, dummy, addr);
                        o.on_evict(addr);
                    }
                }
                out.clear();
                o.tick_into(&mut scratch, Voltage::from_volts(3.2), 0, &mut out);
                black_box(out.gated.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The enum-to-generic dispatch payoff, measured end to end on a bounded
/// run: the legacy `Box<dyn LeakagePredictor>` `Simulation` vs the
/// monomorphized lane `build_lane` resolves for the same scheme. The two
/// produce bit-identical results (`kernel_matrix` asserts it); this measures
/// what routing every per-access predictor hook through static dispatch is
/// worth in instructions per second.
fn dispatch_dyn_vs_mono(c: &mut Criterion) {
    const BUDGET: u64 = 40_000;
    let mut config = SystemConfig::paper_default();
    config.max_instructions = BUDGET;
    let workload = build(AppId::Crc32, Scale::Tiny);

    let mut group = c.benchmark_group("dispatch");
    group.throughput(Throughput::Elements(BUDGET));
    group.bench_function("dyn_simulation", |b| {
        b.iter(|| {
            Simulation::new(&config, Scheme::DecayEdbp, workload.clone(), None)
                .run_collecting()
                .result
                .committed
        })
    });
    group.bench_function("mono_lane", |b| {
        b.iter(|| {
            let lane = build_lane(&config, Scheme::DecayEdbp, workload.clone(), None, false)
                .expect("paper-default energy configuration is valid");
            run_lane(lane).result.committed
        })
    });
    group.finish();
}

/// Lockstep amortization: the same bounded workload replayed by 1, 4 and 9
/// scheme lanes, in both group drives — interleaved (each lane decodes and
/// steps the core itself) and transposed (the lead lane records its
/// instruction stream; siblings replay it without touching the core).
/// Throughput counts *total* committed instructions, so the wide rosters
/// show how much per-instruction cost the shared stream amortizes away.
fn lockstep_scaling(c: &mut Criterion) {
    const BUDGET: u64 = 20_000;
    let mut config = SystemConfig::paper_default();
    config.max_instructions = BUDGET;
    let workload = build(AppId::Crc32, Scale::Tiny);
    let oracle = record_generation_trace(&config, workload.clone());

    let lanes = |schemes: &[Scheme]| {
        schemes
            .iter()
            .map(|&scheme| {
                let trace = scheme.needs_oracle_trace().then(|| oracle.clone());
                build_lane(&config, scheme, workload.clone(), trace, false)
                    .expect("paper-default energy configuration is valid")
            })
            .collect::<Vec<_>>()
    };

    let mut group = c.benchmark_group("lockstep");
    for (label, schemes) in [
        ("lanes_1", &[Scheme::DecayEdbp][..]),
        (
            "lanes_4",
            &[Scheme::Baseline, Scheme::Decay, Scheme::Edbp, Scheme::Ideal][..],
        ),
        ("lanes_9", &Scheme::ALL[..]),
    ] {
        group.throughput(Throughput::Elements(BUDGET * schemes.len() as u64));
        for (mode_label, mode) in [
            ("interleaved", LockstepMode::Interleaved),
            ("transposed", LockstepMode::Transposed),
        ] {
            group.bench_function(&format!("{mode_label}_{label}"), |b| {
                b.iter(|| {
                    run_lockstep_with(lanes(schemes), mode)
                        .iter()
                        .map(|o| o.result.committed)
                        .sum::<u64>()
                })
            });
        }
    }
    group.finish();
}

/// The speculative constant-regime energy kernel against the guarded
/// per-cycle path it replaces (DESIGN.md §8): burst advance under steady
/// discharge (long event-free chunks), steady charge (saturated buffer —
/// speculation stays inadmissible, measuring its overhead floor),
/// near-crossing churn (checkpoint/recharge cycling where chunks stay
/// short), and the outage recharge loop alone.
fn energy_speculative_advance(c: &mut Criterion) {
    use ehs_energy::{BurstPlan, ConstantSource, EnergySystem, EnergySystemConfig, StepEvent};
    use ehs_units::{Energy, Frequency, Power, Time};

    const CYCLES: u64 = 65_536;
    let dt = Time::from_nanos(40.0);
    let freq = Frequency::from_mega_hertz(25.0);
    let mk = |source_mw: f64, speculate: bool| {
        let mut sys = EnergySystem::new(
            EnergySystemConfig::paper_default(),
            ConstantSource::new(Power::from_milli_watts(source_mw)),
        )
        .expect("valid");
        sys.set_speculation(speculate);
        sys
    };
    // Drive `CYCLES` total cycles through bursts of `burst_len`, riding out
    // any outage, and return the final state so nothing is optimized away.
    let drive = |mut sys: EnergySystem, load: Energy, burst_len: u64| {
        let mut overdraw = Energy::ZERO;
        let mut done = 0u64;
        while done < CYCLES {
            let plan = BurstPlan {
                max_cycles: burst_len.min(CYCLES - done),
                dt,
                load,
                frequency: freq,
                wake_at_cycle: None,
                wake_below_voltage: None,
            };
            let (taken, event) = sys.step_burst(&plan, &mut overdraw);
            done += taken;
            if event != StepEvent::Running {
                let out = sys.power_off_and_recharge();
                if !out.recovered {
                    break;
                }
            }
        }
        (sys.stored(), overdraw)
    };

    let mut group = c.benchmark_group("energy_speculate");
    group.throughput(Throughput::Elements(CYCLES));
    // (scenario, source mW, load mW, burst length). Discharge at 6 mW from
    // full spans ~19k cycles before the checkpoint threshold, so the long
    // bursts commit as a handful of chunks; `b4` mirrors the simulator's
    // fetch-limited ≤4-cycle bursts.
    for (name, source_mw, load_mw, burst_len) in [
        ("steady_discharge", 2.0, 6.0, 4096),
        ("steady_discharge_b4", 2.0, 6.0, 4),
        ("steady_charge_saturated", 20.0, 1.0, 4096),
        ("near_crossing_churn", 2.0, 8.0, 64),
    ] {
        let load = Power::from_milli_watts(load_mw) * dt;
        for (mode, speculate) in [("speculative", true), ("guarded", false)] {
            group.bench_function(&format!("{name}/{mode}"), |b| {
                b.iter_batched(
                    || mk(source_mw, speculate),
                    |sys| drive(sys, load, burst_len),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();

    // The outage recharge loop alone: setup drains to the checkpoint
    // threshold (untimed), the routine is one full recovery (~3.1 µJ at
    // 0.5 mW − leakage ≈ 124 steps of 50 µs).
    let mut group = c.benchmark_group("energy_recharge");
    for (mode, speculate) in [("speculative", true), ("guarded", false)] {
        group.bench_function(&format!("outage_recovery/{mode}"), |b| {
            b.iter_batched(
                || {
                    let mut sys = mk(0.5, speculate);
                    let step_dt = Time::from_micros(10.0);
                    let load = Power::from_milli_watts(5.0) * step_dt;
                    while sys.step(step_dt, load) != StepEvent::CheckpointRequested {}
                    sys
                },
                |mut sys| {
                    let out = sys.power_off_and_recharge();
                    assert!(out.recovered);
                    out
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    tag_probe,
    policy_rank_update,
    shadow_table_lookup,
    oracle_generation_advance,
    dispatch_dyn_vs_mono,
    lockstep_scaling,
    energy_speculative_advance
);
criterion_main!(kernels);
