//! Smoke tests for the experiment harness: each runner must produce a
//! well-formed table at Tiny scale. The cheap experiments run fully; the
//! heavyweight sweeps are covered by their underlying pieces elsewhere and
//! by the `exp_*` binaries / benches.

use edbp_repro::sim::experiments::{
    ablation_policy, fig6_true_false_rates, fig9_absolute, hw_cost, other_predictors,
    ExperimentOptions,
};

#[test]
fn hw_cost_reproduces_the_paper_point() {
    let table = hw_cost(ExperimentOptions::quick());
    let rendered = table.render();
    assert!(
        rendered.contains("0.0098%"),
        "Section VI-B's 0.0098% must appear:\n{rendered}"
    );
}

#[test]
fn fig9_covers_all_twenty_apps() {
    let table = fig9_absolute(ExperimentOptions::quick());
    assert_eq!(table.len(), 21, "20 apps + MEAN row");
    let rendered = table.render();
    assert!(rendered.contains("crc32"));
    assert!(rendered.contains("mpeg2_dec"));
    assert!(rendered.contains("MEAN"));
}

#[test]
fn fig6_reports_three_schemes_per_app() {
    let table = fig6_true_false_rates(ExperimentOptions::quick());
    assert_eq!(table.len(), 3 * 21, "3 schemes x (20 apps + MEAN)");
}

#[test]
fn ablation_policy_runs_all_four_variants() {
    let table = ablation_policy(ExperimentOptions::quick());
    assert_eq!(table.len(), 4);
    let rendered = table.render();
    assert!(rendered.contains("paper (mru+clean)"));
    assert!(rendered.contains("neither"));
}

#[test]
fn other_predictors_composes_edbp_with_amc() {
    let table = other_predictors(ExperimentOptions::quick());
    assert_eq!(table.len(), 5);
    assert!(table.render().contains("amc+edbp"));
}

#[test]
fn tables_render_as_csv_too() {
    let table = hw_cost(ExperimentOptions::quick());
    let csv = table.to_csv();
    assert!(csv.lines().count() >= 2, "header + rows");
    assert!(csv.starts_with("blocks,"));
}
