//! Full-system behavioural integration tests: determinism, scheme
//! mechanics, and the qualitative relationships the paper's evaluation
//! rests on.

use edbp_repro::energy::TracePreset;
use edbp_repro::sim::{run_app, Scheme, SourceKind, SystemConfig};
use edbp_repro::units::{Capacitance, Power};
use edbp_repro::workloads::{AppId, Scale};

#[test]
fn identical_configurations_give_identical_results() {
    let config = SystemConfig::paper_default();
    let a = run_app(&config, Scheme::DecayEdbp, AppId::Qsort, Scale::Tiny);
    let b = run_app(&config, Scheme::DecayEdbp, AppId::Qsort, Scale::Tiny);
    assert_eq!(a, b, "simulation must be bit-reproducible");
}

#[test]
fn different_seeds_change_outage_schedule() {
    let mut config = SystemConfig::paper_default();
    let a = run_app(&config, Scheme::Baseline, AppId::Qsort, Scale::Tiny);
    config.source = SourceKind::Preset {
        preset: TracePreset::RfHome,
        seed: 1234,
        scale: 1.0,
    };
    let b = run_app(&config, Scheme::Baseline, AppId::Qsort, Scale::Tiny);
    assert_eq!(a.committed, b.committed, "same program, same work");
    assert_ne!(
        a.total_time(),
        b.total_time(),
        "a different ambient history must change the timeline"
    );
}

#[test]
fn infinite_energy_means_no_outages_and_no_edbp_activity() {
    // Section VIII: with an unlimited supply EDBP never engages.
    let mut config = SystemConfig::paper_default();
    config.source = SourceKind::Constant(Power::from_milli_watts(200.0));
    let r = run_app(&config, Scheme::Edbp, AppId::Crc32, Scale::Tiny);
    assert!(r.completed);
    assert_eq!(r.outages, 0);
    assert_eq!(r.prediction.true_positives, 0, "no voltage sag, no kills");
    assert_eq!(r.prediction.false_positives, 0);
    assert_eq!(r.dcache.gates, 0);
}

#[test]
fn outage_frequency_follows_the_trace_ordering() {
    // Section VI-H6: thermal < solar < RFOffice/RFHome in outage count.
    let mut outages = Vec::new();
    for preset in [
        TracePreset::Thermal,
        TracePreset::Solar,
        TracePreset::RfHome,
    ] {
        let mut config = SystemConfig::paper_default();
        config.source = SourceKind::Preset {
            preset,
            seed: 42,
            scale: 1.0,
        };
        let r = run_app(&config, Scheme::Baseline, AppId::JpegEnc, Scale::Small);
        assert!(r.completed, "{preset:?} run must complete");
        outages.push((preset, r.outages));
    }
    assert!(
        outages[0].1 <= outages[1].1 && outages[1].1 < outages[2].1,
        "outage ordering violated: {outages:?}"
    );
}

#[test]
fn bigger_capacitors_mean_fewer_outages() {
    // The mechanism behind Fig. 16.
    let mut counts = Vec::new();
    for uf in [4.7, 47.0, 470.0] {
        let mut config = SystemConfig::paper_default();
        config.energy.capacitor.capacitance = Capacitance::from_micro_farads(uf);
        let r = run_app(&config, Scheme::Baseline, AppId::Dijkstra, Scale::Small);
        assert!(r.completed);
        counts.push(r.outages);
    }
    assert!(
        counts[0] > counts[1] && counts[1] >= counts[2],
        "outages must fall with capacitance: {counts:?}"
    );
}

#[test]
fn leakage_off_stress_saves_static_energy() {
    // Fig. 1/8's magic knob: 80% less D$ leakage must show up directly in
    // the static-energy bucket without touching hit rates.
    let config = SystemConfig::paper_default();
    let base = run_app(&config, Scheme::Baseline, AppId::Sha, Scale::Tiny);
    let off = run_app(&config, Scheme::LeakageOff80, AppId::Sha, Scale::Tiny);
    let ratio = off.energy.dcache_static / base.energy.dcache_static;
    assert!(
        (0.1..0.45).contains(&ratio),
        "static energy should drop to ~20-30% (time shifts add slack), got {ratio:.3}"
    );
}

#[test]
fn edbp_gates_blocks_and_accounts_them() {
    let config = SystemConfig::paper_default();
    let r = run_app(&config, Scheme::Edbp, AppId::JpegEnc, Scale::Small);
    assert!(r.completed);
    assert!(r.dcache.gates > 0, "EDBP must actually deactivate blocks");
    let p = &r.prediction;
    assert!(
        p.true_positives + p.false_positives > 0,
        "gated blocks must be classified"
    );
    assert!(p.coverage() > 0.0 && p.coverage() <= 1.0);
    assert!(p.accuracy() > 0.0 && p.accuracy() <= 1.0);
}

#[test]
fn combined_scheme_covers_more_than_decay_alone() {
    // The paper's Fig. 6 story: Cache Decay alone misses the zombies.
    let config = SystemConfig::paper_default();
    let decay = run_app(&config, Scheme::Decay, AppId::JpegEnc, Scale::Small);
    let combined = run_app(&config, Scheme::DecayEdbp, AppId::JpegEnc, Scale::Small);
    assert!(
        combined.prediction.coverage() > decay.prediction.coverage(),
        "decay {:.3} vs combined {:.3}",
        decay.prediction.coverage(),
        combined.prediction.coverage()
    );
}

#[test]
fn baseline_never_gates() {
    let config = SystemConfig::paper_default();
    let r = run_app(&config, Scheme::Baseline, AppId::Fft, Scale::Tiny);
    assert_eq!(r.dcache.gates, 0);
    assert_eq!(r.prediction.true_positives, 0);
    assert_eq!(r.prediction.false_positives, 0);
}

#[test]
fn icache_survives_outages_when_nonvolatile() {
    // The default ReRAM I$ keeps its contents across power failures, so its
    // miss count is essentially the cold footprint, independent of outages.
    let config = SystemConfig::paper_default();
    let r = run_app(&config, Scheme::Baseline, AppId::GsmEnc, Scale::Small);
    assert!(r.outages > 0);
    assert!(
        r.icache.miss_rate() < 0.02,
        "nonvolatile I$ should rarely miss, got {:.4}",
        r.icache.miss_rate()
    );
}

#[test]
fn sram_icache_goes_cold_at_every_outage() {
    let mut config = SystemConfig::paper_default();
    config.icache_tech = edbp_repro::nvm::MemoryTechnology::Sram;
    config.icache_energy_scale = 1.0;
    let volatile = run_app(&config, Scheme::Baseline, AppId::GsmEnc, Scale::Small);
    let nonvolatile = run_app(
        &SystemConfig::paper_default(),
        Scheme::Baseline,
        AppId::GsmEnc,
        Scale::Small,
    );
    assert!(
        volatile.icache.misses > nonvolatile.icache.misses,
        "volatile I$ must re-fill after outages ({} vs {})",
        volatile.icache.misses,
        nonvolatile.icache.misses
    );
}
