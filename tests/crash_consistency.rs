//! Crash-consistency integration tests: the architectural result of a run
//! interrupted by dozens of power failures must equal the failure-free
//! result, for every scheme. This is the correctness contract of JIT
//! checkpointing (paper Section II) and of every predictor's write-back /
//! parking discipline.

use edbp_repro::cpu::{Core, Effect, ProgramBuilder, Reg};
use edbp_repro::sim::{Scheme, Simulation, SourceKind, SystemConfig};
use edbp_repro::units::Power;
use edbp_repro::workloads::{AppId, Workload};
use std::collections::HashMap;

/// A program that writes a recognizable pattern: out[i] = sum of inputs up
/// to i, over several passes (so blocks are dirtied, evicted, re-read).
fn pattern_program() -> Workload {
    const IN: u32 = 0x0010_0000;
    const OUT: u32 = 0x0012_0000;
    const WORDS: u32 = 512; // 2 kB in + 2 kB out: dirties half the cache

    let mut b = ProgramBuilder::new("pattern");
    // Initialize input: in[i] = i * 3 + 7.
    b.li(Reg::R1, IN);
    b.li(Reg::R2, IN + WORDS * 4);
    b.li(Reg::R3, 7);
    let init = b.label_here();
    b.store(Reg::R3, Reg::R1, 0);
    b.addi(Reg::R3, Reg::R3, 3);
    b.addi(Reg::R1, Reg::R1, 4);
    b.blt(Reg::R1, Reg::R2, init);

    // Sixteen passes of prefix sums into OUT (long enough to span many
    // power cycles on the RFHome trace).
    b.li(Reg::R13, 0);
    b.li(Reg::R14, 16);
    let pass = b.label_here();
    {
        b.li(Reg::R1, IN);
        b.li(Reg::R5, OUT);
        b.li(Reg::R2, IN + WORDS * 4);
        b.li(Reg::R4, 0); // running sum
        let loop_top = b.label_here();
        b.load(Reg::R3, Reg::R1, 0);
        b.add(Reg::R4, Reg::R4, Reg::R3);
        b.store(Reg::R4, Reg::R5, 0);
        b.addi(Reg::R1, Reg::R1, 4);
        b.addi(Reg::R5, Reg::R5, 4);
        b.blt(Reg::R1, Reg::R2, loop_top);
    }
    b.addi(Reg::R13, Reg::R13, 1);
    b.blt(Reg::R13, Reg::R14, pass);
    b.halt();

    Workload {
        app: AppId::Sha,
        program: b.build_at(0x0100_0000).into(),
        data_footprint_bytes: WORDS * 8,
    }
}

/// Golden model: execute the program on a plain interpreter (no caches, no
/// power failures) and return the expected OUT words.
fn golden_out_words() -> Vec<u32> {
    let wl = pattern_program();
    let mut core = Core::new(&wl.program);
    let mut mem: HashMap<u32, u32> = HashMap::new();
    loop {
        match core.step(&wl.program) {
            Effect::Compute => {}
            Effect::Load { addr, dst } => {
                let v = mem.get(&addr).copied().unwrap_or(0);
                core.finish_load(dst, v);
            }
            Effect::Store { addr, value } => {
                mem.insert(addr, value);
            }
            Effect::Halted => break,
        }
    }
    (0..512u32)
        .map(|i| mem.get(&(0x0012_0000 + i * 4)).copied().unwrap_or(0))
        .collect()
}

fn probe_addrs() -> Vec<u64> {
    (0..512u64).map(|i| 0x0012_0000 + i * 4).collect()
}

fn assert_consistent(scheme: Scheme) {
    let config = SystemConfig::paper_default();
    let trace = scheme
        .needs_oracle_trace()
        .then(|| edbp_repro::sim::record_generation_trace(&config, pattern_program()));
    let sim = Simulation::new(&config, scheme, pattern_program(), trace);
    let (result, words) = sim.run_with_memory_probe(&probe_addrs());
    assert!(result.completed, "{scheme}: did not complete");
    assert!(
        result.outages >= 2,
        "{scheme}: needs real intermittence to be meaningful (got {} outages)",
        result.outages
    );
    assert_eq!(result.brownouts, 0, "{scheme}: JIT margin violated");
    let golden = golden_out_words();
    assert_eq!(words, golden, "{scheme}: memory image diverged");
}

#[test]
fn baseline_is_crash_consistent() {
    assert_consistent(Scheme::Baseline);
}

#[test]
fn sdbp_is_crash_consistent() {
    assert_consistent(Scheme::Sdbp);
}

#[test]
fn cache_decay_is_crash_consistent() {
    assert_consistent(Scheme::Decay);
}

#[test]
fn edbp_is_crash_consistent() {
    assert_consistent(Scheme::Edbp);
}

#[test]
fn combined_is_crash_consistent() {
    assert_consistent(Scheme::DecayEdbp);
}

#[test]
fn amc_edbp_is_crash_consistent() {
    assert_consistent(Scheme::AmcEdbp);
}

#[test]
fn ideal_is_crash_consistent() {
    assert_consistent(Scheme::Ideal);
}

#[test]
fn failure_free_run_matches_golden_too() {
    // With an over-provisioned constant source there are no outages at all;
    // the cached execution must still match the golden model.
    let mut config = SystemConfig::paper_default();
    config.source = SourceKind::Constant(Power::from_milli_watts(100.0));
    let sim = Simulation::new(&config, Scheme::Baseline, pattern_program(), None);
    let (result, words) = sim.run_with_memory_probe(&probe_addrs());
    assert!(result.completed);
    assert_eq!(result.outages, 0, "100 mW never fails");
    assert_eq!(words, golden_out_words());
}

/// The harness is held to the same crash-consistency bar as the simulated
/// caches: a torn run-cache write (injected via the deterministic fault
/// harness) must never surface as a wrong result — the torn entry is
/// rejected on load, stays out of the resume journal, and the result that
/// reached the caller is the fault-free one.
#[test]
fn torn_runcache_write_never_corrupts_a_result() {
    use edbp_repro::sim::fault::{self, FailPlan};
    use edbp_repro::sim::run_app;
    use edbp_repro::sim::runcache::{self, entry_stem, RunCache};
    use edbp_repro::sim::runner::{effective_fingerprint, run_jobs, Job};
    use edbp_repro::workloads::{AppId, Scale};
    use std::sync::Arc;

    // Process-wide installs: no other test in this binary touches the
    // runner's cached path, so first-install-wins cannot race.
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("torn-store");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(fault::install(FailPlan::parse("short@store=1").unwrap()));
    assert!(runcache::install(&dir));

    let config = Arc::new(SystemConfig::paper_default());
    let job = Job {
        config: Arc::clone(&config),
        scheme: Scheme::Edbp,
        app: AppId::Crc32,
        scale: Scale::Tiny,
    };
    let results = run_jobs(std::slice::from_ref(&job), 1);

    // The caller's result is the fault-free one: the tear happened strictly
    // after the simulation, on the persistence path.
    let fresh = run_app(&config, Scheme::Edbp, AppId::Crc32, Scale::Tiny);
    assert_eq!(results[0], fresh, "torn store leaked into the result");

    // The torn bytes landed at the final path (the injected fault bypasses
    // the atomic rename on purpose), yet a fresh handle rejects them and
    // the journal never promised the entry was replayable.
    let fp = effective_fingerprint(&config, Scheme::Edbp);
    let stem = entry_stem(fp, Scheme::Edbp, AppId::Crc32, Scale::Tiny);
    let cache = RunCache::new(&dir).expect("reopen cache dir");
    assert!(
        dir.join(format!("{stem}.run")).exists(),
        "the fault must leave a torn file to reject"
    );
    assert!(
        cache
            .load(fp, Scheme::Edbp, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "torn entry must be rejected on load"
    );
    assert!(!cache.journal_entries().contains(&stem));

    // Recovery: a healthy store (the one-shot fault is spent) overwrites
    // the torn file and round-trips exactly.
    assert!(cache.store(fp, Scheme::Edbp, AppId::Crc32, Scale::Tiny, &fresh, None));
    let replayed = cache
        .load(fp, Scheme::Edbp, AppId::Crc32, Scale::Tiny)
        .expect("repaired entry loads");
    assert_eq!(replayed.result, fresh);
}
